"""Unit + property tests for the binary jump index (Propositions 1-3)."""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jump_index import JumpIndex
from repro.errors import (
    DocumentIdOrderError,
    IndexError_,
    TamperDetectedError,
    WormViolationError,
)

increasing_sequences = st.lists(
    st.integers(min_value=0, max_value=2**20), min_size=1, max_size=120, unique=True
).map(sorted)


def build(values):
    ji = JumpIndex()
    for v in values:
        ji.insert(v)
    return ji


class TestBasics:
    def test_empty(self):
        ji = JumpIndex()
        assert ji.is_empty
        assert not ji.lookup(5)
        assert ji.find_geq(0) is None
        with pytest.raises(IndexError_):
            ji.head_value

    def test_single(self):
        ji = build([7])
        assert ji.lookup(7)
        assert not ji.lookup(6)
        assert ji.find_geq(7) == 7
        assert ji.find_geq(3) == 7
        assert ji.find_geq(8) is None
        assert ji.head_value == 7

    def test_figure7_example(self):
        """The paper's Figure 7(a) sequence: 1, 2, 5, 7, 10, 15."""
        ji = build([1, 2, 5, 7, 10, 15])
        # "the 0th pointer from 1 points to 2"
        assert ji.node_value(ji._node(0).pointer(0)) == 2
        # "the 2nd pointer points to 5 since 1 + 2^2 <= 5 < 1 + 2^3"
        assert ji.node_value(ji._node(0).pointer(2)) == 5
        # "To look up 7, follow the 2nd pointer from 1 to 5 and the 1st
        # pointer from 5 to 7."
        assert ji.lookup(7)
        assert ji.last_path == [(0, 2), (ji._node(0).pointer(2), 1)]

    def test_insert_not_increasing_rejected(self):
        ji = build([5, 9])
        with pytest.raises(DocumentIdOrderError):
            ji.insert(9)
        with pytest.raises(DocumentIdOrderError):
            ji.insert(3)

    def test_value_out_of_bits_rejected(self):
        ji = JumpIndex(max_value_bits=8)
        with pytest.raises(IndexError_):
            ji.insert(256)

    def test_invalid_bits_rejected(self):
        with pytest.raises(IndexError_):
            JumpIndex(max_value_bits=0)

    def test_payloads(self):
        ji = JumpIndex()
        ji.insert(4, payload=400)
        ji.insert(9, payload=900)
        node = ji.find_geq_node(5)
        assert ji.node_value(node) == 9
        assert ji.node_payload(node) == 900

    def test_values_in_insertion_order(self):
        ji = build([3, 8, 9])
        assert ji.values() == [3, 8, 9]
        assert len(ji) == 3


class TestAgainstReference:
    @given(values=increasing_sequences, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_property_lookup_and_find_geq(self, values, data):
        ji = build(values)
        probe = data.draw(st.integers(min_value=0, max_value=2**20 + 10))
        # Proposition 2: every inserted value is found.
        for v in values:
            assert ji.lookup(v)
        # Reference semantics for arbitrary probes.
        assert ji.lookup(probe) == (probe in set(values))
        idx = bisect.bisect_left(values, probe)
        expect = values[idx] if idx < len(values) else None
        assert ji.find_geq(probe) == expect

    @given(values=increasing_sequences)
    @settings(max_examples=60, deadline=None)
    def test_property_prop1_descending_exponents(self, values):
        """Proposition 1: lookups follow strictly decreasing exponents."""
        ji = build(values)
        for v in (values[0], values[-1], values[len(values) // 2]):
            ji.lookup(v)
            exponents = [i for _, i in ji.last_path]
            assert exponents == sorted(exponents, reverse=True)
            assert len(set(exponents)) == len(exponents)

    @given(values=increasing_sequences)
    @settings(max_examples=60, deadline=None)
    def test_property_complexity_bound(self, values):
        """At most floor(log2(k)) + 1 pointer follows per lookup."""
        ji = build(values)
        k = values[-1]
        before = ji.pointer_follows
        ji.lookup(k)
        follows = ji.pointer_follows - before
        assert follows <= max(1, k.bit_length())

    def test_prop2_survives_future_inserts(self):
        """Entries remain visible no matter what is inserted later."""
        ji = JumpIndex()
        early = [3, 10, 11, 40]
        for v in early:
            ji.insert(v)
        for v in range(41, 400, 7):
            ji.insert(v)
        for v in early:
            assert ji.lookup(v)

    def test_prop3_never_skips(self):
        """find_geq(k) <= v for every stored v >= k."""
        values = [2, 4, 7, 11, 13, 19, 23, 29, 31, 64, 100]
        ji = build(values)
        for k in range(0, 105):
            geq = [v for v in values if v >= k]
            got = ji.find_geq(k)
            if geq:
                assert got == min(geq)
            else:
                assert got is None


class TestTampering:
    def test_pointers_write_once(self):
        ji = build([1, 2])
        with pytest.raises(WormViolationError):
            ji.set_pointer(0, 0, 0)  # pointer 0 of head already set to 2

    def test_out_of_range_pointer_detected_on_lookup(self):
        ji = build([1, 2, 5, 7, 10, 15])
        fake = ji.append_node(3)
        # Head pointer 4 covers [17, 33); planting value 3 there violates
        # the range invariant on any traversal crossing it.
        ji.set_pointer(0, 4, fake)
        with pytest.raises(TamperDetectedError) as excinfo:
            ji.lookup(20)
        assert excinfo.value.invariant == "jump-monotonicity"

    def test_out_of_range_pointer_detected_on_find_geq(self):
        ji = build([1, 2, 5, 7, 10, 15])
        fake = ji.append_node(3)
        ji.set_pointer(0, 4, fake)
        with pytest.raises(TamperDetectedError):
            ji.find_geq(18)

    def test_set_pointer_to_missing_node_rejected(self):
        ji = build([1])
        with pytest.raises(IndexError_):
            ji.set_pointer(0, 3, 99)

    def test_committed_entries_stay_visible_after_attack(self):
        """Tampering cannot hide entries, only raise alarms elsewhere."""
        ji = build([1, 2, 5, 7, 10, 15])
        fake = ji.append_node(3)
        ji.set_pointer(0, 4, fake)
        for v in [1, 2, 5, 7, 10, 15]:
            assert ji.lookup(v)
