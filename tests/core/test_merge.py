"""Unit tests for the merging strategies and term assignments."""

import numpy as np
import pytest

from repro.core.merge import (
    GreedyCostMerge,
    LearnedPopularMerge,
    PopularUnmergedMerge,
    TermAssignment,
    UniformHashMerge,
    lists_for_cache,
)
from repro.errors import IndexError_, WorkloadError
from repro.workloads.stats import WorkloadStats


class TestTermAssignment:
    def test_basic_accessors(self):
        ta = TermAssignment(list_ids=np.array([0, 1, 0, 2]), num_lists=3)
        assert ta.num_terms == 4
        assert ta.list_for(2) == 0
        assert list(ta.terms_in_list(0)) == [0, 2]
        assert list(ta.terms_per_list()) == [2, 1, 1]

    def test_aggregate(self):
        ta = TermAssignment(list_ids=np.array([0, 1, 0]), num_lists=2)
        agg = ta.aggregate(np.array([10.0, 5.0, 7.0]))
        assert list(agg) == [17.0, 5.0]

    def test_aggregate_shape_mismatch_rejected(self):
        ta = TermAssignment(list_ids=np.array([0]), num_lists=1)
        with pytest.raises(IndexError_):
            ta.aggregate(np.array([1.0, 2.0]))

    def test_out_of_range_list_ids_rejected(self):
        with pytest.raises(IndexError_):
            TermAssignment(list_ids=np.array([0, 3]), num_lists=3)
        with pytest.raises(IndexError_):
            TermAssignment(list_ids=np.array([-1]), num_lists=3)

    def test_nonpositive_num_lists_rejected(self):
        with pytest.raises(IndexError_):
            TermAssignment(list_ids=np.array([], dtype=np.int64), num_lists=0)


class TestUniformHashMerge:
    def test_covers_all_lists_roughly_evenly(self):
        ta = UniformHashMerge(16).assign(16_000)
        per_list = ta.terms_per_list()
        assert per_list.min() > 0
        assert per_list.max() < 3 * per_list.mean()

    def test_deterministic(self):
        a = UniformHashMerge(8).assign(100)
        b = UniformHashMerge(8).assign(100)
        assert (a.list_ids == b.list_ids).all()

    def test_salt_changes_assignment(self):
        a = UniformHashMerge(8, salt=0).assign(100)
        b = UniformHashMerge(8, salt=1).assign(100)
        assert (a.list_ids != b.list_ids).any()

    def test_stable_under_universe_growth(self):
        strategy = UniformHashMerge(32)
        small = strategy.assign(100)
        large = strategy.assign(1000)
        assert (large.list_ids[:100] == small.list_ids).all()
        assert strategy.universe_size() is None

    def test_invalid_num_lists_rejected(self):
        with pytest.raises(IndexError_):
            UniformHashMerge(0)


class TestPopularUnmergedMerge:
    def test_popular_terms_get_singleton_lists(self):
        strategy = PopularUnmergedMerge(10, popular_terms=[42, 7])
        ta = strategy.assign(100)
        assert ta.list_for(42) == 0
        assert ta.list_for(7) == 1
        assert list(ta.terms_in_list(0)) == [42]
        assert list(ta.terms_in_list(1)) == [7]

    def test_remainder_hashes_into_other_lists(self):
        ta = PopularUnmergedMerge(10, popular_terms=[0]).assign(100)
        others = ta.list_ids[1:]
        assert (others >= 1).all()
        assert (others < 10).all()

    def test_stable_under_universe_growth(self):
        strategy = PopularUnmergedMerge(10, popular_terms=[3])
        small = strategy.assign(50)
        large = strategy.assign(500)
        assert (large.list_ids[:50] == small.list_ids).all()

    def test_popular_out_of_universe_ignored(self):
        ta = PopularUnmergedMerge(10, popular_terms=[999]).assign(10)
        assert (ta.list_ids >= 1).all()  # no term got the singleton list

    def test_duplicates_rejected(self):
        with pytest.raises(IndexError_):
            PopularUnmergedMerge(10, popular_terms=[1, 1])

    def test_too_many_popular_rejected(self):
        with pytest.raises(IndexError_):
            PopularUnmergedMerge(2, popular_terms=[1, 2])


class TestLearnedPopularMerge:
    def test_carries_provenance(self):
        strategy = LearnedPopularMerge(
            10, [5, 6], learned_from_fraction=0.1, by="qi"
        )
        assert strategy.learned_from_fraction == 0.1
        assert strategy.by == "qi"
        assert strategy.num_lists == 10
        ta = strategy.assign(20)
        assert ta.list_for(5) == 0

    def test_invalid_provenance_rejected(self):
        with pytest.raises(WorkloadError):
            LearnedPopularMerge(10, [1], learned_from_fraction=0.0, by="qi")
        with pytest.raises(WorkloadError):
            LearnedPopularMerge(10, [1], learned_from_fraction=0.1, by="zi")


class TestGreedyCostMerge:
    def _skewed_stats(self, n=500, seed=0):
        rng = np.random.default_rng(seed)
        ti = (1000 / (np.arange(n) + 1)).astype(np.int64) + 1
        qi = rng.permutation(ti)
        return WorkloadStats(ti=ti, qi=qi)

    def test_beats_uniform_on_skewed_workload(self):
        from repro.core.cost_model import merged_workload_cost

        stats = self._skewed_stats()
        greedy = GreedyCostMerge(8, stats.ti, stats.qi).assign(500)
        uniform = UniformHashMerge(8).assign(500)
        assert merged_workload_cost(greedy, stats) <= merged_workload_cost(
            uniform, stats
        )

    def test_fixed_universe(self):
        stats = self._skewed_stats(100)
        strategy = GreedyCostMerge(4, stats.ti, stats.qi)
        assert strategy.universe_size() == 100
        with pytest.raises(IndexError_):
            strategy.assign(101)

    def test_mismatched_stats_rejected(self):
        with pytest.raises(IndexError_):
            GreedyCostMerge(4, np.array([1.0]), np.array([1.0, 2.0]))

    def test_all_lists_used(self):
        stats = self._skewed_stats(300)
        ta = GreedyCostMerge(8, stats.ti, stats.qi).assign(300)
        assert len(np.unique(ta.list_ids)) == 8


class TestCacheSizing:
    def test_paper_configuration(self):
        """128 MB cache / 8 KB blocks = 16384 lists (Section 3.4/4.5)."""
        assert lists_for_cache(128 * 2**20, 8192) == 16384

    def test_invalid_rejected(self):
        with pytest.raises(IndexError_):
            lists_for_cache(0, 8192)
