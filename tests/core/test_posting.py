"""Unit tests for posting encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.posting import (
    MAX_DOC_ID,
    MAX_TERM_CODE,
    POSTING_SIZE,
    Posting,
    decode_posting,
    decode_postings,
    encode_posting,
    term_code_bits,
)
from repro.errors import IndexError_


class TestEncoding:
    def test_roundtrip(self):
        payload = encode_posting(123456, 789)
        assert len(payload) == POSTING_SIZE
        assert decode_posting(payload) == Posting(123456, 789)

    def test_extremes(self):
        payload = encode_posting(MAX_DOC_ID, MAX_TERM_CODE)
        assert decode_posting(payload) == Posting(MAX_DOC_ID, MAX_TERM_CODE)
        assert decode_posting(encode_posting(0, 0)) == Posting(0, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError_):
            encode_posting(MAX_DOC_ID + 1, 0)
        with pytest.raises(IndexError_):
            encode_posting(-1, 0)
        with pytest.raises(IndexError_):
            encode_posting(0, MAX_TERM_CODE + 1)

    def test_decode_at_offset(self):
        payload = encode_posting(1, 2) + encode_posting(3, 4)
        assert decode_posting(payload, POSTING_SIZE) == Posting(3, 4)

    def test_decode_postings_block(self):
        payload = b"".join(encode_posting(i, i * 2) for i in range(5))
        postings = decode_postings(payload)
        assert postings == [Posting(i, i * 2) for i in range(5)]

    def test_decode_postings_misaligned_rejected(self):
        with pytest.raises(IndexError_):
            decode_postings(b"\x00" * (POSTING_SIZE + 1))

    @given(
        doc_id=st.integers(min_value=0, max_value=MAX_DOC_ID),
        term_code=st.integers(min_value=0, max_value=MAX_TERM_CODE),
    )
    def test_property_roundtrip(self, doc_id, term_code):
        assert decode_posting(encode_posting(doc_id, term_code)) == Posting(
            doc_id, term_code
        )


class TestOrdering:
    def test_sorted_primarily_by_doc_id(self):
        assert Posting(1, 100) < Posting(2, 0)
        assert Posting(1, 0) < Posting(1, 1)


class TestPackedFrequency:
    def test_roundtrip(self):
        from repro.core.posting import pack_term_tf, unpack_term_tf

        code = pack_term_tf(123456, 7)
        assert unpack_term_tf(code) == (123456, 7)

    def test_saturating_tf(self):
        from repro.core.posting import pack_term_tf, unpack_term_tf

        assert unpack_term_tf(pack_term_tf(1, 9999)) == (1, 255)

    def test_unpacked_raw_code_defaults_tf_one(self):
        from repro.core.posting import unpack_term_tf

        assert unpack_term_tf(42) == (42, 1)

    def test_bounds(self):
        from repro.core.posting import (
            MAX_TERM_ID_WITH_TF,
            pack_term_tf,
        )

        assert pack_term_tf(MAX_TERM_ID_WITH_TF, 1) is not None
        with pytest.raises(IndexError_):
            pack_term_tf(MAX_TERM_ID_WITH_TF + 1, 1)
        with pytest.raises(IndexError_):
            pack_term_tf(0, 0)

    @given(
        term_id=st.integers(min_value=0, max_value=2**24 - 1),
        tf=st.integers(min_value=1, max_value=255),
    )
    def test_property_roundtrip(self, term_id, tf):
        from repro.core.posting import (
            encode_posting,
            decode_posting,
            pack_term_tf,
            unpack_term_tf,
        )

        code = pack_term_tf(term_id, tf)
        # The packed code still fits the on-disk posting format.
        posting = decode_posting(encode_posting(0, code))
        assert unpack_term_tf(posting.term_code) == (term_id, tf)


class TestTermCodeBits:
    def test_single_term_needs_no_code(self):
        assert term_code_bits(1) == 0

    @pytest.mark.parametrize("q,bits", [(2, 1), (3, 2), (4, 2), (31, 5), (32, 5), (33, 6)])
    def test_log2_sizes(self, q, bits):
        assert term_code_bits(q) == bits

    def test_nonpositive_rejected(self):
        with pytest.raises(IndexError_):
            term_code_bits(0)
