"""Unit tests for WORM posting lists and their cursors."""

import pytest

from repro.core.posting_list import PostingList
from repro.errors import DocumentIdOrderError, IndexError_, TamperDetectedError


@pytest.fixture()
def pl(store):
    return PostingList(store, "pl/test")  # 256-byte blocks -> 32 postings


class TestAppend:
    def test_positions_roll_at_block_boundary(self, pl):
        positions = [pl.append(i) for i in range(33)]
        assert positions[0] == (0, 0)
        assert positions[31] == (0, 31)
        assert positions[32] == (1, 0)
        assert pl.num_blocks == 2
        assert len(pl) == 33

    def test_entries_per_block_cap(self, store):
        pl = PostingList(store, "pl/capped", entries_per_block=4)
        for i in range(9):
            pl.append(i)
        assert pl.num_blocks == 3
        assert len(pl.read_block_postings(0)) == 4

    def test_cap_larger_than_block_rejected(self, store):
        with pytest.raises(IndexError_):
            PostingList(store, "pl/bad", entries_per_block=1000)

    def test_non_decreasing_enforced(self, pl):
        pl.append(10)
        with pytest.raises(DocumentIdOrderError):
            pl.append(9)

    def test_equal_ids_allowed_for_merged_lists(self, pl):
        pl.append(10, term_code=1)
        pl.append(10, term_code=2)
        assert pl.last_doc_id == 10
        assert len(pl) == 2

    def test_block_max_hint_tracks_largest(self, pl):
        for i in range(40):
            pl.append(i)
        assert pl.block_max_hint(0) == 31
        assert pl.block_max_hint(1) == 39


class TestRead:
    def test_scan_order(self, pl):
        for i in range(50):
            pl.append(i, term_code=i % 3)
        postings = list(pl.scan(counted=False))
        assert [p.doc_id for p in postings] == list(range(50))

    def test_doc_ids(self, pl):
        for i in (1, 4, 9):
            pl.append(i)
        assert pl.doc_ids() == [1, 4, 9]

    def test_counted_read_touches_cache(self, store):
        pl = PostingList(store, "pl/counted")
        pl.append(1)
        before = store.cache.stats.accesses
        pl.read_block_postings(0, counted=True)
        assert store.cache.stats.accesses == before + 1

    def test_uncounted_read_skips_cache(self, store):
        pl = PostingList(store, "pl/uncounted")
        pl.append(1)
        before = store.cache.stats.accesses
        pl.read_block_postings(0, counted=False)
        assert store.cache.stats.accesses == before


class TestVerifyOrder:
    def test_clean_list_passes(self, pl):
        for i in range(100):
            pl.append(i)
        pl.verify_order()

    def test_raw_out_of_order_append_detected(self, store):
        """Mala appends through the device, bypassing the honest writer."""
        from repro.core.posting import encode_posting

        pl = PostingList(store, "pl/tampered")
        pl.append(5)
        pl.append(9)
        store.device.open_file("pl/tampered").append_record(encode_posting(3, 0))
        with pytest.raises(TamperDetectedError) as excinfo:
            pl.verify_order()
        assert excinfo.value.invariant == "posting-monotonicity"


class TestCursor:
    def test_iteration(self, pl):
        for i in range(70):
            pl.append(i)
        cur = pl.cursor()
        seen = []
        while not cur.exhausted:
            seen.append(cur.current.doc_id)
            cur.advance()
        assert seen == list(range(70))

    def test_empty_list_cursor_exhausted(self, pl):
        assert pl.cursor().exhausted

    def test_current_on_exhausted_rejected(self, pl):
        with pytest.raises(IndexError_):
            pl.cursor().current

    def test_term_filtering(self, pl):
        for i in range(30):
            pl.append(i, term_code=i % 2)
        cur = pl.cursor(term_code=1)
        seen = []
        while not cur.exhausted:
            seen.append(cur.current.doc_id)
            cur.advance()
        assert seen == list(range(1, 30, 2))

    def test_filter_with_no_matches_is_exhausted(self, pl):
        for i in range(10):
            pl.append(i, term_code=0)
        assert pl.cursor(term_code=99).exhausted

    def test_seek_geq_sequential(self, pl):
        for i in range(0, 100, 3):
            pl.append(i)
        cur = pl.cursor()
        cur.seek_geq_sequential(50)
        assert cur.current.doc_id == 51
        cur.seek_geq_sequential(97)
        assert cur.current.doc_id == 99
        cur.seek_geq_sequential(100)
        assert cur.exhausted

    def test_blocks_read_dedup(self, pl):
        for i in range(64):  # 2 blocks of 32
            pl.append(i)
        cur = pl.cursor()
        while not cur.exhausted:
            cur.advance()
        assert cur.blocks_read == {0, 1}

    def test_peek_block_counts_once(self, pl):
        for i in range(64):
            pl.append(i)
        cur = pl.cursor()
        cur.peek_block(1)
        cur.peek_block(1)
        assert cur.blocks_read == {0, 1}

    def test_jump_to_forward(self, pl):
        for i in range(96):
            pl.append(i)
        cur = pl.cursor()
        cur.jump_to(2, 5)
        assert cur.current.doc_id == 69

    def test_jump_backwards_rejected(self, pl):
        for i in range(96):
            pl.append(i)
        cur = pl.cursor()
        cur.jump_to(2)
        with pytest.raises(IndexError_):
            cur.jump_to(1)

    def test_jump_past_end_of_block_settles_forward(self, pl):
        for i in range(64):
            pl.append(i)
        cur = pl.cursor()
        cur.jump_to(0, 32)  # one past block 0's entries
        assert cur.current.doc_id == 32

    def test_exhaust(self, pl):
        pl.append(1)
        cur = pl.cursor()
        cur.exhaust()
        assert cur.exhausted
