"""Property tests for posting lists and cursors against list references."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.posting_list import PostingList
from repro.worm.storage import CachedWormStore

# Non-decreasing doc ids with repeats (merged-list shape), small codes.
posting_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # doc id gap (0 = duplicate)
        st.integers(min_value=0, max_value=3),  # term code
    ),
    min_size=1,
    max_size=150,
)


def build(stream, entries_per_block=None):
    store = CachedWormStore(None, block_size=128)  # 16 postings/block
    posting_list = PostingList(
        store, "pl", entries_per_block=entries_per_block
    )
    postings = []
    doc = 0
    for gap, code in stream:
        doc += gap
        posting_list.append(doc, code)
        postings.append((doc, code))
    return posting_list, postings


class TestPostingListProperties:
    @given(stream=posting_streams)
    @settings(max_examples=60, deadline=None)
    def test_property_scan_reproduces_appends(self, stream):
        posting_list, postings = build(stream)
        scanned = [(p.doc_id, p.term_code) for p in posting_list.scan(counted=False)]
        assert scanned == postings
        assert len(posting_list) == len(postings)
        posting_list.verify_order()

    @given(stream=posting_streams, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_filtered_cursor_matches_reference(self, stream, data):
        posting_list, postings = build(stream)
        code = data.draw(st.integers(min_value=0, max_value=3))
        cursor = posting_list.cursor(term_code=code)
        seen = []
        while not cursor.exhausted:
            seen.append(cursor.current.doc_id)
            cursor.advance()
        assert seen == [d for d, c in postings if c == code]

    @given(stream=posting_streams, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_sequential_seek_matches_reference(self, stream, data):
        posting_list, postings = build(stream)
        target = data.draw(
            st.integers(min_value=0, max_value=postings[-1][0] + 2)
        )
        cursor = posting_list.cursor()
        cursor.seek_geq_sequential(target)
        remaining = [d for d, _ in postings if d >= target]
        if remaining:
            assert cursor.current.doc_id == remaining[0]
        else:
            assert cursor.exhausted

    @given(stream=posting_streams)
    @settings(max_examples=40, deadline=None)
    def test_property_restore_equals_original(self, stream):
        """Reattaching to the WORM file reproduces all derived state."""
        posting_list, postings = build(stream)
        reopened = PostingList(posting_list.store, "pl")
        assert len(reopened) == len(posting_list)
        assert reopened.last_doc_id == posting_list.last_doc_id
        assert reopened.doc_ids() == posting_list.doc_ids()
        for block_no in range(posting_list.num_blocks):
            assert reopened.block_max_hint(block_no) == posting_list.block_max_hint(
                block_no
            )
        # And appends continue correctly after the restore.
        reopened.append(posting_list.last_doc_id + 1, 0)
        assert len(reopened) == len(postings) + 1

    @given(stream=posting_streams, cap=st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_property_entries_per_block_cap_respected(self, stream, cap):
        posting_list, postings = build(stream, entries_per_block=cap)
        for block_no in range(posting_list.num_blocks):
            entries = posting_list.read_block_postings(block_no, counted=False)
            assert len(entries) <= cap
        total = sum(
            len(posting_list.read_block_postings(b, counted=False))
            for b in range(posting_list.num_blocks)
        )
        assert total == len(postings)
