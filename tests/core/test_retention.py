"""Unit tests for retention horizons and trustworthy disposition."""

import pytest

from repro.core.retention import RetentionManager
from repro.errors import TamperDetectedError, WormViolationError
from repro.search.engine import EngineConfig, TrustworthySearchEngine


def make_engine(retention_period=10):
    return TrustworthySearchEngine(
        EngineConfig(
            num_lists=16,
            branching=None,
            block_size=512,
            retention_period=retention_period,
        )
    )


class TestHorizons:
    def test_document_cannot_be_deleted_early(self):
        engine = make_engine(retention_period=10)
        doc_id = engine.index_document("keep me", commit_time=0)
        name = engine.documents._file_name(doc_id)
        with pytest.raises(WormViolationError):
            engine.store.device.delete_file(name, now=5)

    def test_dispose_expired_removes_and_logs(self):
        engine = make_engine(retention_period=10)
        engine.index_document("old record", commit_time=0)
        engine.index_document("new record", commit_time=8)
        disposed = engine.dispose_expired(now=12)
        assert disposed == [0]
        assert not engine.documents.exists(0)
        assert engine.documents.exists(1)
        record = engine.retention.disposition_for(0)
        assert record.retention_until == 10
        assert record.disposed_at == 12

    def test_dispose_is_idempotent(self):
        engine = make_engine(retention_period=5)
        engine.index_document("old", commit_time=0)
        assert engine.dispose_expired(now=100) == [0]
        assert engine.dispose_expired(now=200) == []

    def test_permanent_documents_never_disposed(self):
        engine = make_engine(retention_period=None)
        engine.index_document("forever", commit_time=0)
        assert engine.dispose_expired(now=10**9) == []
        assert engine.documents.exists(0)


class TestQueryBehaviour:
    def test_disposed_docs_leave_results(self):
        engine = make_engine(retention_period=10)
        engine.index_document("imclone old memo", commit_time=0)
        engine.index_document("imclone current memo", commit_time=8)
        assert {r.doc_id for r in engine.search("imclone")} == {0, 1}
        engine.dispose_expired(now=12)
        assert {r.doc_id for r in engine.search("imclone")} == {1}

    def test_disposed_docs_pass_verification(self):
        """A disposed doc's dangling posting is not stuffing."""
        engine = make_engine(retention_period=10)
        engine.index_document("imclone old memo", commit_time=0)
        engine.dispose_expired(now=50)
        report = engine.verify_results([0], ["imclone"])
        assert report.ok

    def test_fabricated_ids_still_flagged(self):
        engine = make_engine(retention_period=10)
        engine.index_document("imclone memo", commit_time=0)
        engine.dispose_expired(now=50)
        report = engine.verify_results([0, 999], ["imclone"])
        assert not report.ok  # 999 has no disposition record
        assert engine.retention.classify_dangling(0) == "disposed"
        assert engine.retention.classify_dangling(999) == "fabricated"


class TestLogIntegrity:
    def test_log_survives_reopen(self):
        engine = make_engine(retention_period=5)
        engine.index_document("old", commit_time=0)
        engine.dispose_expired(now=20)
        reopened = RetentionManager(engine.store, log_name="engine/dispositions")
        assert reopened.is_disposed(0)
        assert len(reopened) == 1

    def test_forged_early_disposition_detected(self, store):
        """A disposition claiming to predate the horizon is tampering."""
        import struct

        manager = RetentionManager(store, log_name="d")
        store.append_record("d", struct.pack("<IQQ", 3, 100, 50))
        with pytest.raises(TamperDetectedError) as excinfo:
            list(manager.dispositions())
        assert excinfo.value.invariant == "retention-horizon"


class TestSweepEfficiency:
    """The sweep must not re-read WORM state it has already learned."""

    def test_repeat_sweeps_reuse_cached_horizons(self, monkeypatch):
        engine = make_engine(retention_period=100)
        for i in range(5):
            engine.index_document(f"record {i}", commit_time=i)
        opens = []
        original = engine.store.open_file
        monkeypatch.setattr(
            engine.store,
            "open_file",
            lambda name: (opens.append(name), original(name))[1],
        )
        assert engine.dispose_expired(now=10) == []
        first_sweep = len(opens)
        assert first_sweep == 5  # one horizon read per document
        assert engine.dispose_expired(now=20) == []
        assert len(opens) == first_sweep  # cache hit: no WORM re-opens

    def test_disposed_ids_skipped_without_worm_reads(self, monkeypatch):
        engine = make_engine(retention_period=5)
        engine.index_document("old", commit_time=0)
        assert engine.dispose_expired(now=100) == [0]

        def explode(name):
            raise AssertionError(f"sweep reopened {name}")

        monkeypatch.setattr(engine.store, "open_file", explode)
        assert engine.dispose_expired(now=200) == []

    def test_public_file_name_matches_legacy_alias(self):
        engine = make_engine()
        doc_id = engine.index_document("named", commit_time=0)
        store = engine.documents
        assert store.file_name(doc_id) == store._file_name(doc_id)
