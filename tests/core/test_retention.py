"""Unit tests for retention horizons and trustworthy disposition."""

import pytest

from repro.core.retention import RetentionManager
from repro.errors import TamperDetectedError, WorkloadError, WormViolationError
from repro.search.documents import DocumentStore
from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.worm.faults import (
    FaultInjectingWormDevice,
    FaultPlan,
    SimulatedCrashError,
)
from repro.worm.persistent import JournaledWormDevice
from repro.worm.storage import CachedWormStore


def make_engine(retention_period=10):
    return TrustworthySearchEngine(
        EngineConfig(
            num_lists=16,
            branching=None,
            block_size=512,
            retention_period=retention_period,
        )
    )


class TestHorizons:
    def test_document_cannot_be_deleted_early(self):
        engine = make_engine(retention_period=10)
        doc_id = engine.index_document("keep me", commit_time=0)
        name = engine.documents._file_name(doc_id)
        with pytest.raises(WormViolationError):
            engine.store.device.delete_file(name, now=5)

    def test_dispose_expired_removes_and_logs(self):
        engine = make_engine(retention_period=10)
        engine.index_document("old record", commit_time=0)
        engine.index_document("new record", commit_time=8)
        disposed = engine.dispose_expired(now=12)
        assert disposed == [0]
        assert not engine.documents.exists(0)
        assert engine.documents.exists(1)
        record = engine.retention.disposition_for(0)
        assert record.retention_until == 10
        assert record.disposed_at == 12

    def test_dispose_is_idempotent(self):
        engine = make_engine(retention_period=5)
        engine.index_document("old", commit_time=0)
        assert engine.dispose_expired(now=100) == [0]
        assert engine.dispose_expired(now=200) == []

    def test_permanent_documents_never_disposed(self):
        engine = make_engine(retention_period=None)
        engine.index_document("forever", commit_time=0)
        assert engine.dispose_expired(now=10**9) == []
        assert engine.documents.exists(0)


class TestQueryBehaviour:
    def test_disposed_docs_leave_results(self):
        engine = make_engine(retention_period=10)
        engine.index_document("imclone old memo", commit_time=0)
        engine.index_document("imclone current memo", commit_time=8)
        assert {r.doc_id for r in engine.search("imclone")} == {0, 1}
        engine.dispose_expired(now=12)
        assert {r.doc_id for r in engine.search("imclone")} == {1}

    def test_disposed_docs_pass_verification(self):
        """A disposed doc's dangling posting is not stuffing."""
        engine = make_engine(retention_period=10)
        engine.index_document("imclone old memo", commit_time=0)
        engine.dispose_expired(now=50)
        report = engine.verify_results([0], ["imclone"])
        assert report.ok

    def test_fabricated_ids_still_flagged(self):
        engine = make_engine(retention_period=10)
        engine.index_document("imclone memo", commit_time=0)
        engine.dispose_expired(now=50)
        report = engine.verify_results([0, 999], ["imclone"])
        assert not report.ok  # 999 has no disposition record
        assert engine.retention.classify_dangling(0) == "disposed"
        assert engine.retention.classify_dangling(999) == "fabricated"


class TestLogIntegrity:
    def test_log_survives_reopen(self):
        engine = make_engine(retention_period=5)
        engine.index_document("old", commit_time=0)
        engine.dispose_expired(now=20)
        reopened = RetentionManager(engine.store, log_name="engine/dispositions")
        assert reopened.is_disposed(0)
        assert len(reopened) == 1

    def test_forged_early_disposition_detected(self, store):
        """A disposition claiming to predate the horizon is tampering."""
        import struct

        manager = RetentionManager(store, log_name="d")
        store.append_record("d", struct.pack("<IQQ", 3, 100, 50))
        with pytest.raises(TamperDetectedError) as excinfo:
            list(manager.dispositions())
        assert excinfo.value.invariant == "retention-horizon"


class TestSweepEfficiency:
    """The sweep must not re-read WORM state it has already learned."""

    def test_repeat_sweeps_reuse_cached_horizons(self, monkeypatch):
        engine = make_engine(retention_period=100)
        for i in range(5):
            engine.index_document(f"record {i}", commit_time=i)
        opens = []
        original = engine.store.open_file
        monkeypatch.setattr(
            engine.store,
            "open_file",
            lambda name: (opens.append(name), original(name))[1],
        )
        assert engine.dispose_expired(now=10) == []
        first_sweep = len(opens)
        assert first_sweep == 5  # one horizon read per document
        assert engine.dispose_expired(now=20) == []
        assert len(opens) == first_sweep  # cache hit: no WORM re-opens

    def test_disposed_ids_skipped_without_worm_reads(self, monkeypatch):
        engine = make_engine(retention_period=5)
        engine.index_document("old", commit_time=0)
        assert engine.dispose_expired(now=100) == [0]

        def explode(name):
            raise AssertionError(f"sweep reopened {name}")

        monkeypatch.setattr(engine.store, "open_file", explode)
        assert engine.dispose_expired(now=200) == []

    def test_public_file_name_matches_legacy_alias(self):
        engine = make_engine()
        doc_id = engine.index_document("named", commit_time=0)
        store = engine.documents
        assert store.file_name(doc_id) == store._file_name(doc_id)


class TestCrashRecovery:
    """Disposition is log-then-delete; a crash between the two must be
    completed by the next sweep, not skipped forever."""

    CONFIG = EngineConfig(
        num_lists=16, branching=None, block_size=512, retention_period=10
    )

    def test_crash_between_log_and_delete_completes_on_next_sweep(
        self, tmp_path
    ):
        path = str(tmp_path / "arch.worm")
        device = JournaledWormDevice(path, block_size=512)
        engine = TrustworthySearchEngine(
            self.CONFIG, store=CachedWormStore(None, device=device)
        )
        engine.index_document("old record", commit_time=0)
        device.close()

        # Reopen under fault injection and crash right after the
        # disposition-log append applies — the document deletion that
        # should follow never runs (power loss between _log and
        # delete_file).
        plan = FaultPlan()
        device = FaultInjectingWormDevice(path, plan=plan, block_size=512)
        engine = TrustworthySearchEngine(
            self.CONFIG, store=CachedWormStore(None, device=device)
        )
        plan.crash("append:after-apply", on_call=1)
        with pytest.raises(SimulatedCrashError):
            engine.dispose_expired(now=50)

        # Recovery: the log committed, the file survived.
        device = JournaledWormDevice(path, block_size=512)
        engine = TrustworthySearchEngine(
            self.CONFIG, store=CachedWormStore(None, device=device)
        )
        assert engine.retention.is_disposed(0)
        assert engine.documents.exists(0)
        # The next sweep must complete the interrupted disposition.
        assert engine.dispose_expired(now=50) == [0]
        assert not engine.documents.exists(0)
        # ... and stay idempotent afterwards.
        assert engine.dispose_expired(now=60) == []
        device.close()

    def test_premature_rerun_defers_completion(self):
        """A re-run *before* the logged horizon leaves the file alone
        (the WORM device would refuse the deletion) and a later sweep
        finishes the job."""
        store = CachedWormStore(None, block_size=512)
        docs = DocumentStore(store)
        docs.commit("interrupted", commit_time=0, retention_until=10)
        manager = RetentionManager(store)
        # Simulate the crashed sweep's surviving state: record logged,
        # file still present.
        manager._log(0, 10, 20)
        assert manager.dispose_expired(docs, now=5) == []
        assert docs.exists(0)
        assert manager.dispose_expired(docs, now=20) == [0]
        assert not docs.exists(0)


class TestFractionalHorizons:
    """The disposition log packs integer horizons; fractional horizons
    must be rejected at commit, and legacy ones rounded *up* in the log
    so the replay tamper check stays sufficient."""

    def test_commit_rejects_fractional_horizon(self, store):
        docs = DocumentStore(store)
        with pytest.raises(WorkloadError):
            docs.commit("x", commit_time=0, retention_until=100.7)
        assert docs.next_doc_id == 0  # nothing was committed
        assert docs.commit("x", commit_time=0, retention_until=100.0) == 0

    def test_legacy_fractional_horizon_rounds_up_in_log(self, store):
        # A legacy archive may hold a fractional horizon committed
        # before commit-time validation existed; build one directly.
        docs = DocumentStore(store)
        legacy = store.device.create_file(
            docs.file_name(0), retention_until=100.7
        )
        legacy.append_record(b"legacy record")
        docs.restore(1, {0: 0})
        manager = RetentionManager(store)
        # Every sweep at or before the true horizon refuses to dispose:
        # truncation would have opened a one-unit window here.
        for now in range(95, 101):
            assert manager.dispose_expired(docs, now=now) == []
        assert manager.dispose_expired(docs, now=101) == [0]
        record = manager.disposition_for(0)
        assert record.retention_until == 101  # ceil(100.7), not int()
        assert record.disposed_at >= 100.7
        # The logged pair still satisfies the replay invariant.
        assert [d.doc_id for d in manager.dispositions()] == [0]

    def test_boundary_record_below_ceiled_horizon_is_tampering(self, store):
        """A record claiming disposal inside the fractional boundary —
        possible output of the old truncating packer — is classified as
        tampering on replay once horizons are ceiled."""
        import struct

        manager = RetentionManager(store, log_name="d")
        # True horizon 100.7 ceils to 101; a disposal stamped 100 sits
        # inside the retention window.
        store.append_record("d", struct.pack("<IQQ", 0, 101, 100))
        with pytest.raises(TamperDetectedError) as excinfo:
            list(manager.dispositions())
        assert excinfo.value.invariant == "retention-horizon"
