"""Unit tests for the jump-index space model (Figure 8(a))."""

import pytest

from repro.core import space
from repro.errors import IndexError_


class TestLevels:
    @pytest.mark.parametrize(
        "branching,n,expected",
        [
            (2, 2**32, 32),
            (32, 2**32, 7),   # ceil(32/5) = 7
            (64, 2**32, 6),   # ceil(32/6) = 6
            (4, 2**16, 8),
            (2, 2, 1),
        ],
    )
    def test_levels(self, branching, n, expected):
        assert space.levels(branching, n) == expected

    def test_invalid_rejected(self):
        with pytest.raises(IndexError_):
            space.levels(1)
        with pytest.raises(IndexError_):
            space.levels(2, 1)


class TestPointerCounts:
    def test_paper_b32(self):
        """B=32, N=2^32: (32-1)*7 = 217 pointers, 868 bytes."""
        assert space.jump_pointers_per_block(32) == 217
        assert space.pointer_bytes_per_block(32) == 868

    def test_b2(self):
        assert space.jump_pointers_per_block(2) == 32
        assert space.pointer_bytes_per_block(2) == 128


class TestBlockBudget:
    def test_paper_8k_b32(self):
        """Paper: 'For B = 32 and L = 8 KB, a jump index adds 11% space
        overhead'."""
        p = space.postings_per_block(8192, 32)
        assert p == (8192 - 868) // 8  # 915
        overhead = space.space_overhead(8192, 32)
        assert 0.10 < overhead < 0.13

    def test_paper_8k_b2(self):
        """Paper Section 4.5: 'the slowdown is 1.5% ... for B = 2'."""
        overhead = space.space_overhead(8192, 2)
        assert 0.013 < overhead < 0.017
        assert space.disjunctive_slowdown(8192, 2) == overhead

    def test_overhead_grows_with_branching_at_fixed_block(self):
        values = [space.space_overhead(8192, b) for b in (2, 8, 32, 128)]
        assert values == sorted(values)

    def test_overhead_shrinks_with_block_size(self):
        values = [space.space_overhead(block, 32) for block in (4096, 8192, 16384, 32768)]
        assert values == sorted(values, reverse=True)

    def test_infeasible_configuration_rejected(self):
        with pytest.raises(IndexError_):
            space.postings_per_block(256, 64)  # pointers alone exceed block
        with pytest.raises(IndexError_):
            space.postings_per_block(0, 2)

    def test_budget_inequality_holds(self):
        for block in (4096, 8192, 16384, 32768):
            for b in (2, 4, 8, 16, 32, 64, 128):
                p = space.postings_per_block(block, b)
                used = 8 * p + space.pointer_bytes_per_block(b)
                assert used <= block
                # Maximality: one more posting would not fit.
                assert used + 8 > block - 7
