"""Unit tests for the mutable tail and sealed WORM segments.

Covers the building blocks of the write–read decoupled index in
isolation: tail insertion/snapshot semantics, manifest pack/replay and
its tamper checks, orphan segment numbering after a crashed seal, the
popularity heuristic, and segment list round-trips.
"""

import pytest

from repro.core.posting import pack_term_tf
from repro.core.segments import (
    MANIFEST_FILE,
    STRATEGY_POPULAR,
    STRATEGY_UNIFORM,
    SealedSegment,
    SegmentInfo,
    SegmentManifest,
    choose_popular_terms,
    next_seg_no,
    segment_list_name,
    validate_seal_strategy,
    write_segment_lists,
)
from repro.core.tail import MutableTailIndex
from repro.errors import TamperDetectedError, WorkloadError
from repro.worm.storage import CachedWormStore


def make_store() -> CachedWormStore:
    return CachedWormStore(None, block_size=512)


def seal_info(seg_no, first, last, count, **kwargs) -> SegmentInfo:
    defaults = dict(num_lists=8, strategy=STRATEGY_UNIFORM)
    defaults.update(kwargs)
    return SegmentInfo(
        seg_no=seg_no,
        first_doc=first,
        last_doc=last,
        doc_count=count,
        **defaults,
    )


# ----------------------------------------------------------------------
# the mutable tail
# ----------------------------------------------------------------------
class TestMutableTailIndex:
    def test_add_and_snapshot(self):
        tail = MutableTailIndex()
        tail.add(0, {3: pack_term_tf(3, 2), 7: pack_term_tf(7, 1)})
        tail.add(2, {3: pack_term_tf(3, 1)})
        snap = tail.snapshot()
        assert tail.doc_count == 2
        assert tail.posting_count == 3
        assert (tail.first_doc, tail.last_doc) == (0, 2)
        assert [d for d, _ in snap.postings_for(3)] == [0, 2]
        assert snap.docs_with_all([3, 7]) == [0]
        assert snap.docs_with_all([3]) == [0, 2]
        assert snap.docs_with_all([]) == []

    def test_collect_candidates_max_merges_tf(self):
        tail = MutableTailIndex()
        tail.add(5, {1: pack_term_tf(1, 4)})
        snap = tail.snapshot()
        candidates = {5: {1: 2}}
        scanned = snap.collect_candidates([1, 9], candidates)
        assert scanned == 1
        assert candidates[5][1] == 4  # max(2, 4)

    def test_doc_ids_must_increase(self):
        tail = MutableTailIndex()
        tail.add(4, {0: pack_term_tf(0, 1)})
        with pytest.raises(WorkloadError):
            tail.add(4, {0: pack_term_tf(0, 1)})
        with pytest.raises(WorkloadError):
            tail.add(3, {0: pack_term_tf(0, 1)})

    def test_clear_is_copy_on_seal(self):
        tail = MutableTailIndex()
        tail.add(0, {1: pack_term_tf(1, 1)})
        snap = tail.snapshot()
        tail.clear()
        # Pre-seal snapshot keeps its view; the tail itself is empty.
        assert snap.doc_count == 1
        assert list(snap.postings_for(1))
        assert tail.doc_count == 0
        assert tail.generation == snap.generation + 1

    def test_postings_by_term_is_defensive(self):
        tail = MutableTailIndex()
        tail.add(0, {1: pack_term_tf(1, 1)})
        copy = tail.postings_by_term()
        copy[1].clear()
        assert len(tail.snapshot().postings_for(1)) == 1


# ----------------------------------------------------------------------
# the manifest
# ----------------------------------------------------------------------
class TestSegmentManifest:
    def test_seal_records_accumulate(self):
        manifest = SegmentManifest(make_store())
        manifest.append(seal_info(0, 0, 4, 5))
        manifest.append(seal_info(1, 5, 9, 5))
        assert [r.seg_no for r in manifest.live()] == [0, 1]
        assert manifest.sealed_through == 9
        assert manifest.max_seg_no == 1
        assert manifest.record_count == 2

    def test_merge_replaces_contiguous_run(self):
        manifest = SegmentManifest(make_store())
        manifest.append(seal_info(0, 0, 4, 5))
        manifest.append(seal_info(1, 5, 9, 5))
        manifest.append(seal_info(2, 10, 10, 1))
        manifest.append(seal_info(3, 0, 9, 10, inputs=(0, 1)))
        assert [r.seg_no for r in manifest.live()] == [3, 2]
        assert manifest.sealed_through == 10

    def test_replay_rebuilds_live_set(self):
        store = make_store()
        manifest = SegmentManifest(store)
        manifest.append(
            seal_info(
                0, 0, 4, 5,
                strategy=STRATEGY_POPULAR,
                popular_terms=(7, 3),
            )
        )
        manifest.append(seal_info(1, 5, 9, 5))
        manifest.append(seal_info(2, 0, 9, 10, inputs=(0, 1)))
        replayed = SegmentManifest(store)
        assert replayed.live() == manifest.live()
        assert replayed.record_count == 3
        # The popular-term tuple survives byte-exactly: readers rebuild
        # the identical term→list assignment from it.
        assert replayed._records[0].popular_terms == (7, 3)

    @pytest.mark.parametrize(
        "bad",
        [
            seal_info(5, 3, 1, 2),                       # inverted range
            seal_info(5, 0, 4, 0),                       # empty
            seal_info(0, 10, 12, 3),                     # seg_no reused
            seal_info(5, 4, 12, 9),                      # overlaps sealed
            seal_info(5, 0, 9, 10, inputs=(1, 0)),       # not a live run
            seal_info(5, 0, 9, 9, inputs=(0, 1)),        # wrong doc_count
            seal_info(5, 0, 8, 10, inputs=(0, 1)),       # wrong range
        ],
    )
    def test_invalid_transitions_refused(self, bad):
        manifest = SegmentManifest(make_store())
        manifest.append(seal_info(0, 0, 4, 5))
        manifest.append(seal_info(1, 5, 9, 5))
        before = manifest.live()
        with pytest.raises(TamperDetectedError):
            manifest.append(bad)
        # Refused before the WORM append: replay sees no trace of it.
        assert manifest.live() == before
        assert SegmentManifest(manifest.store).live() == before

    def test_garbage_record_is_tampering(self):
        store = make_store()
        SegmentManifest(store).append(seal_info(0, 0, 4, 5))
        store.append_record(MANIFEST_FILE, b"\xff" * 40)
        with pytest.raises(TamperDetectedError) as exc:
            SegmentManifest(store)
        assert exc.value.invariant == "segment-manifest"

    def test_truncated_record_is_tampering(self):
        store = make_store()
        store.ensure_file(MANIFEST_FILE)
        store.append_record(MANIFEST_FILE, b"\x01\x00")
        with pytest.raises(TamperDetectedError):
            SegmentManifest(store)


# ----------------------------------------------------------------------
# segment numbering (orphans burn numbers)
# ----------------------------------------------------------------------
class TestNextSegNo:
    def test_starts_at_zero(self):
        store = make_store()
        assert next_seg_no(store.device, SegmentManifest(store)) == 0

    def test_advances_past_manifest(self):
        store = make_store()
        manifest = SegmentManifest(store)
        manifest.append(seal_info(0, 0, 4, 5))
        assert next_seg_no(store.device, manifest) == 1

    def test_orphan_files_burn_numbers(self):
        """A crashed seal leaves list files with no manifest record; the
        number must never be reissued (WORM files cannot be replaced)."""
        store = make_store()
        manifest = SegmentManifest(store)
        write_segment_lists(
            store,
            7,
            {1: [(0, pack_term_tf(1, 1))]},
            num_lists=8,
            strategy=STRATEGY_UNIFORM,
            popular_terms=(),
            branching=None,
        )
        assert next_seg_no(store.device, manifest) == 8
        # Orphans are invisible to the live set.
        assert manifest.live() == []


# ----------------------------------------------------------------------
# popularity + strategy plumbing
# ----------------------------------------------------------------------
class TestChoosePopularTerms:
    def test_top_k_by_count_then_term_id(self):
        counts = {10: 5, 2: 9, 7: 9, 4: 1}
        assert choose_popular_terms(counts, 3, num_lists=16) == (2, 7, 10)

    def test_clamped_below_num_lists(self):
        counts = {i: 10 - i for i in range(10)}
        # PopularUnmergedMerge needs at least one shared list.
        assert len(choose_popular_terms(counts, 8, num_lists=4)) == 3

    def test_empty_counts(self):
        assert choose_popular_terms({}, 4, num_lists=16) == ()

    def test_validate_seal_strategy(self):
        for name in ("uniform", "popular", "epoch"):
            assert validate_seal_strategy(name) == name
        with pytest.raises(WorkloadError):
            validate_seal_strategy("zipf")


# ----------------------------------------------------------------------
# segment list round-trip
# ----------------------------------------------------------------------
class TestSealedSegmentReads:
    POSTINGS = {
        1: [(0, pack_term_tf(1, 2)), (2, pack_term_tf(1, 1))],
        5: [(0, pack_term_tf(5, 1)), (1, pack_term_tf(5, 3))],
        9: [(2, pack_term_tf(9, 1))],
    }

    @pytest.mark.parametrize("branching", [None, 4])
    def test_round_trip(self, branching):
        store = make_store()
        total = write_segment_lists(
            store,
            0,
            self.POSTINGS,
            num_lists=8,
            strategy=STRATEGY_UNIFORM,
            popular_terms=(),
            branching=branching,
        )
        assert total == 5
        segment = SealedSegment(
            store, seal_info(0, 0, 2, 3), branching=branching
        )
        doc_ids, _seeks, _blocks = segment.conjunctive_doc_ids([1, 5])
        assert doc_ids == [0]
        candidates = {}
        segment.collect_candidates([1, 9], candidates)
        assert {d: dict(tf) for d, tf in candidates.items()} == {
            0: {1: 2},
            2: {1: 1, 9: 1},
        }
        assert segment.postings_by_term() == self.POSTINGS
        assert segment.posting_count() == 5

    def test_absent_term_short_circuits_conjunction(self):
        store = make_store()
        write_segment_lists(
            store,
            0,
            self.POSTINGS,
            num_lists=8,
            strategy=STRATEGY_UNIFORM,
            popular_terms=(),
            branching=None,
        )
        segment = SealedSegment(store, seal_info(0, 0, 2, 3), branching=None)
        doc_ids, seeks, blocks = segment.conjunctive_doc_ids([1, 1234])
        assert doc_ids == [] and seeks == 0 and blocks == 0

    def test_popular_layout_isolates_hot_terms(self):
        store = make_store()
        write_segment_lists(
            store,
            0,
            self.POSTINGS,
            num_lists=8,
            strategy=STRATEGY_POPULAR,
            popular_terms=(1, 5),
            branching=None,
        )
        segment = SealedSegment(
            store,
            seal_info(
                0, 0, 2, 3,
                strategy=STRATEGY_POPULAR,
                popular_terms=(1, 5),
            ),
            branching=None,
        )
        # Popular terms own lists 0..k-1 in manifest order.
        assert segment.list_for(1) == 0
        assert segment.list_for(5) == 1
        assert segment.list_for(9) >= 2
        assert store.device.exists(segment_list_name(0, 0))
        candidates = {}
        segment.collect_candidates([1, 5, 9], candidates)
        assert len(candidates) == 3
