"""Unit + property tests for the Huffman term-coding model."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.term_coding import (
    build_huffman_code,
    entropy_bits,
    merged_list_code_stats,
)
from repro.errors import IndexError_


class TestHuffman:
    def test_single_term_needs_no_bits(self):
        code = build_huffman_code({7: 100})
        assert code.lengths == {7: 0}
        assert code.expected_bits() == 0.0
        assert code.fixed_width_bits() == 0

    def test_uniform_two_terms(self):
        code = build_huffman_code({1: 50, 2: 50})
        assert code.lengths == {1: 1, 2: 1}
        assert code.expected_bits() == 1.0
        assert code.savings_fraction() == 0.0

    def test_skew_beats_fixed_width(self):
        """The paper's point: Zipfian mixes compress below log2(q)."""
        counts = {t: max(1, 1000 // (t + 1)) for t in range(16)}
        code = build_huffman_code(counts)
        assert code.fixed_width_bits() == 4
        assert code.expected_bits() < 4.0
        assert code.savings_fraction() > 0.1

    def test_textbook_example(self):
        # Frequencies 5, 9, 12, 13, 16, 45 — the classic CLRS example:
        # optimal expected length = 224/100 bits? (weighted sum = 224)
        counts = dict(enumerate([5, 9, 12, 13, 16, 45]))
        code = build_huffman_code(counts)
        weighted = sum(code.lengths[t] * c for t, c in counts.items())
        assert weighted == 224

    def test_heavy_term_gets_short_code(self):
        code = build_huffman_code({0: 1000, 1: 10, 2: 10, 3: 10})
        assert code.lengths[0] < code.lengths[1]

    def test_zero_counts_excluded(self):
        code = build_huffman_code({0: 10, 1: 0, 2: 5})
        assert set(code.lengths) == {0, 2}

    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            build_huffman_code({})
        with pytest.raises(IndexError_):
            build_huffman_code({1: 0})

    def test_parallel_wrapper(self):
        code = merged_list_code_stats([3, 4], [10, 20])
        assert set(code.lengths) == {3, 4}
        with pytest.raises(IndexError_):
            merged_list_code_stats([1], [1, 2])

    @given(
        counts=st.dictionaries(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=1, max_value=10_000),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_optimality_bounds(self, counts):
        """Shannon bound: H <= E[len] < H + 1; and Kraft holds."""
        code = build_huffman_code(counts)
        h = entropy_bits(counts)
        expected = code.expected_bits()
        if len(counts) > 1:
            assert h - 1e-9 <= expected < h + 1.0
            kraft = sum(2.0 ** -l for l in code.lengths.values())
            assert kraft <= 1.0 + 1e-9
        # Never worse than the fixed-width budget... plus the fractional
        # slack of non-power-of-two alphabets.
        assert expected <= code.fixed_width_bits() + 1.0


class TestEntropy:
    def test_uniform_entropy(self):
        assert entropy_bits({0: 1, 1: 1, 2: 1, 3: 1}) == pytest.approx(2.0)

    def test_degenerate_entropy_zero(self):
        assert entropy_bits({0: 100}) == 0.0
        assert entropy_bits({}) == 0.0

    def test_skew_lowers_entropy(self):
        assert entropy_bits({0: 97, 1: 1, 2: 1, 3: 1}) < 1.0
