"""Unit tests for the trustworthy commit-time index (Section 5)."""

import struct

import pytest

from repro.core.time_index import CommitTimeIndex
from repro.errors import DocumentIdOrderError, TamperDetectedError


@pytest.fixture()
def cti(store):
    return CommitTimeIndex(store, "times")


class TestRecording:
    def test_basic_range_query(self, cti):
        commits = [(0, 100), (1, 100), (2, 105), (3, 200), (4, 201)]
        for doc_id, t in commits:
            cti.record_commit(doc_id, t)
        assert cti.docs_in_range(100, 105) == [0, 1, 2]
        assert cti.docs_in_range(101, 199) == [2]
        assert cti.docs_in_range(200, 300) == [3, 4]
        assert cti.docs_in_range(0, 99) == []
        assert cti.docs_in_range(202, 300) == []
        assert len(cti) == 5

    def test_inverted_range_empty(self, cti):
        cti.record_commit(0, 10)
        assert cti.docs_in_range(20, 10) == []

    def test_first_commit_geq(self, cti):
        cti.record_commit(0, 50)
        cti.record_commit(1, 90)
        assert cti.first_commit_geq(0) == 50
        assert cti.first_commit_geq(51) == 90
        assert cti.first_commit_geq(91) is None

    def test_retro_dated_commit_rejected_at_ingest(self, cti):
        cti.record_commit(0, 100)
        with pytest.raises(DocumentIdOrderError):
            cti.record_commit(1, 99)

    def test_non_increasing_doc_id_rejected(self, cti):
        cti.record_commit(5, 100)
        with pytest.raises(DocumentIdOrderError):
            cti.record_commit(5, 101)

    def test_many_commits_spanning_blocks(self, cti):
        for doc_id in range(200):  # 12-byte records, 256-byte blocks
            cti.record_commit(doc_id, 1000 + doc_id // 3)
        docs = cti.docs_in_range(1010, 1019)
        assert docs == list(range(30, 60))
        cti.verify()


class TestTamperDetection:
    def _raw_append(self, store, name, commit_time, doc_id):
        """Mala appends a log record directly through the device."""
        store.device.open_file(name).append_record(
            struct.pack("<QI", commit_time, doc_id)
        )

    def test_retro_dated_raw_append_detected_by_range_query(self, store):
        cti = CommitTimeIndex(store, "t")
        for doc_id in range(10):
            cti.record_commit(doc_id, 100 + doc_id)
        # Mala back-dates a fabricated record to Nov. 2001.
        self._raw_append(store, "t", 50, 999)
        with pytest.raises(TamperDetectedError) as excinfo:
            cti.docs_in_range(100, 2000)
        assert excinfo.value.invariant == "commit-time-monotonicity"

    def test_retro_dated_raw_append_detected_by_audit(self, store):
        cti = CommitTimeIndex(store, "t")
        cti.record_commit(0, 100)
        self._raw_append(store, "t", 99, 1)
        with pytest.raises(TamperDetectedError):
            cti.verify()

    def test_duplicate_doc_id_raw_append_detected(self, store):
        cti = CommitTimeIndex(store, "t")
        cti.record_commit(0, 100)
        cti.record_commit(1, 101)
        self._raw_append(store, "t", 102, 1)  # reuses doc id 1
        with pytest.raises(TamperDetectedError):
            cti.verify()

    def test_clean_log_passes_audit(self, cti):
        for doc_id in range(50):
            cti.record_commit(doc_id, doc_id * 2)
        cti.verify()
