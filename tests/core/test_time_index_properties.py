"""Property tests for the commit-time index against an interval reference."""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.time_index import CommitTimeIndex
from repro.worm.storage import CachedWormStore

commit_histories = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # time gap to previous
        st.integers(min_value=1, max_value=1),   # doc id step (always 1)
    ),
    min_size=1,
    max_size=120,
)


def build(history):
    store = CachedWormStore(None, block_size=256)
    index = CommitTimeIndex(store, "t")
    records = []
    time, doc = 0, -1
    for gap, step in history:
        time += gap
        doc += step
        index.record_commit(doc, time)
        records.append((time, doc))
    return index, records


class TestCommitTimeProperties:
    @given(history=commit_histories, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_range_queries_match_reference(self, history, data):
        index, records = build(history)
        max_time = records[-1][0]
        t1 = data.draw(st.integers(min_value=0, max_value=max_time + 3))
        t2 = data.draw(st.integers(min_value=0, max_value=max_time + 3))
        expected = [d for t, d in records if t1 <= t <= t2]
        assert index.docs_in_range(t1, t2) == expected

    @given(history=commit_histories, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_first_commit_geq(self, history, data):
        index, records = build(history)
        times = sorted({t for t, _ in records})
        probe = data.draw(st.integers(min_value=0, max_value=times[-1] + 3))
        idx = bisect.bisect_left(times, probe)
        expected = times[idx] if idx < len(times) else None
        assert index.first_commit_geq(probe) == expected

    @given(history=commit_histories)
    @settings(max_examples=30, deadline=None)
    def test_property_restore_preserves_answers(self, history):
        """Reattaching to the WORM log reproduces identical query answers."""
        index, records = build(history)
        reopened = CommitTimeIndex(index.store, "t")
        max_time = records[-1][0]
        for t1 in range(0, max_time + 2, max(1, max_time // 5)):
            assert reopened.docs_in_range(t1, max_time + 1) == index.docs_in_range(
                t1, max_time + 1
            )
        assert len(reopened) == len(records)
        assert reopened.last_commit_time == records[-1][0]
