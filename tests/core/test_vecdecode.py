"""Property tests: the batch column decoder equals the scalar decoder.

The vectorized read path (:mod:`repro.core.vecdecode`) reinterprets a
posting region as parallel doc-ID / term-code columns in one pass; the
scalar path (:func:`repro.core.posting.decode_postings`) unpacks one
8-byte posting at a time.  Everything downstream — cursors, joins,
audits — assumes they agree byte for byte, on every storage path a
block can arrive from (legacy merged lists, tail-mode sealed segments).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.posting import (
    MAX_DOC_ID,
    MAX_TERM_CODE,
    Posting,
    decode_postings,
    encode_posting,
)
from repro.core.posting_list import PostingList
from repro.core.vecdecode import DecodedBlock, decode_columns
from repro.errors import IndexError_
from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.worm.storage import CachedWormStore

postings_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MAX_DOC_ID),
        st.integers(min_value=0, max_value=MAX_TERM_CODE),
    ),
    max_size=120,
)


def payload_of(pairs):
    return b"".join(encode_posting(doc, code) for doc, code in pairs)


class TestDecodeColumns:
    @given(pairs=postings_strategy)
    @settings(max_examples=80, deadline=None)
    def test_property_columns_equal_scalar_decode(self, pairs):
        payload = payload_of(pairs)
        doc_ids, term_codes = decode_columns(payload)
        scalar = list(decode_postings(payload))
        assert list(doc_ids) == [p.doc_id for p in scalar]
        assert list(term_codes) == [p.term_code for p in scalar]

    @given(pairs=postings_strategy)
    @settings(max_examples=80, deadline=None)
    def test_property_decoded_block_is_sequence_compatible(self, pairs):
        block = DecodedBlock.from_payload(payload_of(pairs))
        reference = [Posting(doc, code) for doc, code in pairs]
        assert len(block) == len(reference)
        assert list(block) == reference
        assert block == reference
        assert block.to_postings() == reference
        if reference:
            assert block[0] == reference[0]
            assert block[-1] == reference[-1]
            assert block[1:] == reference[1:]

    def test_empty_payload(self):
        doc_ids, term_codes = decode_columns(b"")
        assert list(doc_ids) == [] and list(term_codes) == []
        block = DecodedBlock.from_payload(b"")
        assert len(block) == 0 and list(block) == []

    def test_single_posting(self):
        block = DecodedBlock.from_payload(encode_posting(7, 3))
        assert list(block) == [Posting(7, 3)]

    def test_extreme_values_round_trip(self):
        pairs = [(0, 0), (MAX_DOC_ID, MAX_TERM_CODE), (MAX_DOC_ID, 0)]
        block = DecodedBlock.from_payload(payload_of(sorted(pairs)))
        assert list(block) == [Posting(d, c) for d, c in sorted(pairs)]

    @pytest.mark.parametrize("extra", [1, 3, 7])
    def test_ragged_payload_matches_scalar_error(self, extra):
        payload = encode_posting(1, 2) + b"\x00" * extra
        with pytest.raises(IndexError_) as batch_err:
            decode_columns(payload)
        with pytest.raises(IndexError_) as scalar_err:
            list(decode_postings(payload))
        assert str(batch_err.value) == str(scalar_err.value)


# Non-decreasing doc ids with repeats (merged-list shape), small codes.
streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=150,
)


class TestPostingListPaths:
    @given(stream=streams)
    @settings(max_examples=50, deadline=None)
    def test_property_block_reads_equal_scalar_decode(self, stream):
        store = CachedWormStore(None, block_size=128)  # 16 postings/block
        posting_list = PostingList(store, "pl")
        doc = 0
        for gap, code in stream:
            doc += gap
            posting_list.append(doc, code)
        for block_no in range(posting_list.num_blocks):
            raw = store.peek_block("pl", block_no)
            batch = posting_list.read_block_postings(block_no, counted=False)
            assert list(batch) == list(decode_postings(raw))
            assert list(batch.doc_ids) == [p.doc_id for p in decode_postings(raw)]


DOCS = [
    "alpha beta gamma",
    "beta gamma delta",
    "gamma delta epsilon",
    "alpha epsilon",
    "delta alpha beta",
    "epsilon beta",
]


def assert_columns_match_scan(posting_list):
    """scan() (Posting view) and scan_columns() (column view) agree."""
    flat = [(p.doc_id, p.term_code) for p in posting_list.scan(counted=False)]
    columns = []
    for doc_ids, term_codes in posting_list.scan_columns(counted=False):
        columns.extend(zip(doc_ids, term_codes))
    assert columns == flat


class TestEnginePaths:
    def test_legacy_engine_lists(self):
        engine = TrustworthySearchEngine(EngineConfig(num_lists=4, block_size=256, branching=None))
        for text in DOCS:
            engine.index_document(text)
        assert engine._lists, "expected physical posting lists"
        for posting_list in engine._lists.values():
            assert_columns_match_scan(posting_list)

    def test_sealed_segment_lists(self):
        engine = TrustworthySearchEngine(
            EngineConfig(num_lists=4, block_size=256, branching=None, tail_max_docs=64)
        )
        for text in DOCS:
            engine.index_document(text)
        engine.seal_tail()
        assert engine._segments, "expected a sealed segment"
        for segment in engine._segments:
            lists = list(segment.attached_lists())
            assert lists, "sealed segment should expose posting lists"
            for posting_list, _ in lists:
                assert_columns_match_scan(posting_list)

    def test_tail_and_segment_search_agree_with_legacy(self):
        legacy = TrustworthySearchEngine(EngineConfig(num_lists=4, block_size=256, branching=None))
        tailed = TrustworthySearchEngine(
            EngineConfig(num_lists=4, block_size=256, branching=None, tail_max_docs=3)
        )
        for text in DOCS:
            legacy.index_document(text)
            tailed.index_document(text)
        for query in ("beta", "gamma delta", "alpha epsilon"):
            assert legacy.search(query, top_k=10) == tailed.search(query, top_k=10)
