"""Unit tests for the offline auditors (Section 5 countermeasures)."""


from repro.core.block_jump_index import BlockJumpIndex
from repro.core.posting import encode_posting
from repro.core.posting_list import PostingList
from repro.core.verification import (
    AuditReport,
    audit_posting_list,
    audit_search_result,
)
from repro.worm.storage import CachedWormStore


class TestAuditReport:
    def test_ok_when_empty(self):
        report = AuditReport(subject="x")
        assert report.ok
        report.add("bad")
        assert not report.ok
        assert report.violations == ["bad"]


class TestPostingListAudit:
    def test_clean_list(self, store):
        pl = PostingList(store, "pl")
        for i in range(100):
            pl.append(i, term_code=i % 3)
        report = audit_posting_list(pl)
        assert report.ok
        assert report.entries_checked == 100

    def test_order_violation_reported(self, store):
        pl = PostingList(store, "pl")
        pl.append(10)
        store.device.open_file("pl").append_record(encode_posting(3, 0))
        report = audit_posting_list(pl)
        assert not report.ok
        assert "append-order violation" in report.violations[0]

    def test_jump_pointers_clean(self):
        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=4, max_doc_bits=16)
        for i in range(0, 600, 2):
            bji.insert(i)
        report = audit_posting_list(bji.posting_list, bji)
        assert report.ok
        # Entries plus every committed pointer were checked.
        assert report.entries_checked > 300

    def test_backward_jump_pointer_reported(self):
        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=4, max_doc_bits=16)
        for i in range(600):
            bji.insert(i)
        for slot in range(bji.num_slots):
            if store.peek_slot("pl", 3, slot) is None:
                store.set_slot("pl", 3, slot, 1)
                break
        report = audit_posting_list(bji.posting_list, bji)
        assert not report.ok
        assert any("backwards" in v for v in report.violations)

    def test_nonexistent_target_reported(self):
        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=4, max_doc_bits=16)
        for i in range(600):
            bji.insert(i)
        for slot in range(bji.num_slots):
            if store.peek_slot("pl", 0, slot) is None:
                store.set_slot("pl", 0, slot, 9999)
                break
        report = audit_posting_list(bji.posting_list, bji)
        assert any("nonexistent block" in v for v in report.violations)

    def test_wrong_range_target_reported(self):
        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=2, max_doc_bits=16)
        for i in range(0, 2000, 4):
            bji.insert(i)
        nb = bji.posting_list.block_max_hint(0)
        for slot in range(bji.num_slots):
            lo, hi = bji.slot_range(nb, slot)
            if hi < 2000 and store.peek_slot("pl", 0, slot) is None:
                store.set_slot("pl", 0, slot, bji.posting_list.num_blocks - 1)
                break
        report = audit_posting_list(bji.posting_list, bji)
        assert any("no ID in" in v for v in report.violations)


class TestSearchResultAudit:
    def _world(self):
        docs = {
            1: "imclone memo for stewart",
            2: "quarterly finance report",
        }
        return (
            lambda doc_id: doc_id in docs,
            lambda doc_id, term: term in docs.get(doc_id, "").split(),
        )

    def test_clean_results(self):
        exists, contains = self._world()
        report = audit_search_result(
            [1], ["imclone"], document_exists=exists, document_contains=contains
        )
        assert report.ok

    def test_nonexistent_document_flagged(self):
        exists, contains = self._world()
        report = audit_search_result(
            [1, 99], ["imclone"], document_exists=exists, document_contains=contains
        )
        assert not report.ok
        assert "nonexistent" in report.violations[0]

    def test_keyword_mismatch_flagged(self):
        exists, contains = self._world()
        report = audit_search_result(
            [2], ["imclone"], document_exists=exists, document_contains=contains
        )
        assert not report.ok
        assert "none of the query terms" in report.violations[0]

    def test_disjunctive_contract_any_term_suffices(self):
        exists, contains = self._world()
        report = audit_search_result(
            [2],
            ["imclone", "finance"],
            document_exists=exists,
            document_contains=contains,
        )
        assert report.ok
