"""Shared corpus and engine builders for the test suite.

Several test modules used to carry their own copy of the same
index-building boilerplate; build engines through these helpers instead
so corpus tweaks and config plumbing happen in one place.
"""

from typing import List, Optional, Sequence, Tuple

from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.sharding import ShardedSearchEngine
from repro.worm.storage import CachedWormStore

#: The canonical small corpus (compliance-flavoured, six documents).
DEFAULT_CORPUS: List[str] = [
    "imclone trading memo for stewart and waksal",       # 0
    "quarterly revenue audit for the finance team",      # 1
    "meeting notes about imclone drug development",      # 2
    "stewart waksal imclone november trading archive",   # 3
    "project status update for the storage retention",   # 4
    "finance meeting about quarterly revenue targets",   # 5
]

#: Config used by most single-engine integration tests.
SMALL_CONFIG = EngineConfig(num_lists=32, branching=4)

#: Config used by the sharding equivalence tests (no jump index, so the
#: scan/join split is exercised without pointer-slot space pressure).
SHARD_CONFIG = EngineConfig(num_lists=64, block_size=4096, branching=None)


def build_engine(
    texts: Optional[Sequence[str]] = None,
    *,
    config: Optional[EngineConfig] = None,
    store: Optional[CachedWormStore] = None,
    batch: bool = False,
) -> TrustworthySearchEngine:
    """A :class:`TrustworthySearchEngine` with ``texts`` indexed.

    ``texts`` defaults to :data:`DEFAULT_CORPUS`; ``config`` defaults to
    :data:`SMALL_CONFIG`.  Pass ``batch=True`` to ingest through
    :meth:`index_batch` instead of one :meth:`index_document` per text.
    """
    engine = TrustworthySearchEngine(config or SMALL_CONFIG, store=store)
    texts = DEFAULT_CORPUS if texts is None else list(texts)
    if batch:
        engine.index_batch(texts)
    else:
        for text in texts:
            engine.index_document(text)
    return engine


def build_sharded(
    texts: Optional[Sequence[str]] = None,
    *,
    num_shards: int = 2,
    config: Optional[EngineConfig] = None,
    **kwargs,
) -> ShardedSearchEngine:
    """A :class:`ShardedSearchEngine` with ``texts`` batch-indexed."""
    sharded = ShardedSearchEngine(
        config or SHARD_CONFIG, num_shards=num_shards, **kwargs
    )
    texts = DEFAULT_CORPUS if texts is None else list(texts)
    if texts:
        sharded.index_batch(texts)
    return sharded


def build_engine_pair(
    texts: Sequence[str],
    num_shards: int,
    *,
    config: Optional[EngineConfig] = None,
) -> Tuple[TrustworthySearchEngine, ShardedSearchEngine]:
    """``(single, sharded)`` engines over the same corpus.

    The pair the sharding equivalence properties compare: a 1-engine
    archive indexed document-at-a-time and a K-shard archive batch
    indexed, both from ``config`` (default :data:`SHARD_CONFIG`).
    """
    config = config or SHARD_CONFIG
    single = build_engine(texts, config=config)
    sharded = build_sharded(texts, num_shards=num_shards, config=config)
    return single, sharded
