"""Snapshot comparison: tolerance bands, config drift, CLI exit codes."""

import copy
import json

import pytest

from repro.errors import WorkloadError
from repro.loadtest.compare import (
    DEFAULT_BANDS,
    ToleranceBand,
    compare_snapshots,
    main,
    parse_band_override,
)
from repro.loadtest.snapshot import SNAPSHOT_SCHEMA


def make_snapshot(**overrides):
    """A minimal but complete repro-loadtest/v1 document."""
    metrics = {
        "qps": 1000.0,
        "ingest_docs_per_s": 100.0,
        "ingest_mb_per_s": 1.5,
        "error_rate": 0.0,
        "operations": 5000,
        "shards": 2,
        "latency_ms": {
            "search": {
                "count": 4500,
                "mean_ms": 1.0,
                "p50_ms": 0.8,
                "p95_ms": 2.0,
                "p99_ms": 4.0,
            },
            "ingest": {
                "count": 500,
                "mean_ms": 3.0,
                "p50_ms": 2.5,
                "p99_ms": 8.0,
            },
        },
    }
    metrics.update(overrides)
    return {
        "schema": SNAPSHOT_SCHEMA,
        "seed": 42,
        "config": {
            "seed": 42,
            "clients": 4,
            "mix": 0.9,
            "duration": 5.0,
            "arrival_rate": None,
        },
        "metrics": metrics,
    }


class TestBand:
    def test_within_band_is_none(self):
        band = ToleranceBand(min_ratio=0.5)
        assert band.check("qps", 1000.0, 900.0) is None
        assert band.check("qps", 1000.0, 2000.0) is None

    def test_throughput_floor(self):
        band = ToleranceBand(min_ratio=0.5)
        message = band.check("qps", 1000.0, 400.0)
        assert message is not None and "floor" in message

    def test_latency_ceiling(self):
        band = ToleranceBand(max_ratio=4.0, higher_is_better=False)
        assert band.check("p99", 1.0, 3.9) is None
        message = band.check("p99", 1.0, 4.1)
        assert message is not None and "ceiling" in message

    def test_absolute_ceiling_wins_over_zero_baseline(self):
        band = ToleranceBand(max_abs=0.001, higher_is_better=False)
        assert band.check("error_rate", 0.0, 0.0) is None
        assert band.check("error_rate", 0.0, 0.01) is not None

    def test_zero_baseline_without_abs_is_unguarded(self):
        band = ToleranceBand(min_ratio=0.5)
        assert band.check("qps", 0.0, 123.0) is None


class TestCompare:
    def test_identical_snapshots_pass(self):
        violations, report = compare_snapshots(make_snapshot(), make_snapshot())
        assert violations == []
        assert any(line.startswith("OK") for line in report)

    def test_small_jitter_passes(self):
        fresh = make_snapshot(qps=700.0)  # 0.7x: inside the 0.4x floor
        violations, _ = compare_snapshots(make_snapshot(), fresh)
        assert violations == []

    def test_qps_collapse_fails(self):
        fresh = make_snapshot(qps=100.0)  # 0.1x
        violations, _ = compare_snapshots(make_snapshot(), fresh)
        assert any("qps" in v for v in violations)

    def test_latency_blowup_fails(self):
        fresh = make_snapshot()
        fresh["metrics"]["latency_ms"]["search"]["p99_ms"] = 40.0  # 10x
        violations, _ = compare_snapshots(make_snapshot(), fresh)
        assert any("p99_ms" in v for v in violations)

    def test_error_rate_fails_absolutely(self):
        fresh = make_snapshot(error_rate=0.05)
        violations, _ = compare_snapshots(make_snapshot(), fresh)
        assert any("error_rate" in v for v in violations)

    def test_config_drift_is_a_violation(self):
        fresh = make_snapshot()
        fresh["config"]["seed"] = 7
        violations, _ = compare_snapshots(make_snapshot(), fresh)
        assert any("config.seed" in v for v in violations)

    def test_missing_fresh_metric_is_a_violation(self):
        fresh = make_snapshot()
        del fresh["metrics"]["qps"]
        violations, _ = compare_snapshots(make_snapshot(), fresh)
        assert any("missing from the fresh" in v for v in violations)

    def test_missing_baseline_metric_is_skipped(self):
        baseline = make_snapshot()
        del baseline["metrics"]["ingest_mb_per_s"]
        violations, report = compare_snapshots(baseline, make_snapshot())
        assert violations == []
        assert any(line.startswith("SKIP") for line in report)

    def test_custom_bands_override_defaults(self):
        fresh = make_snapshot(qps=700.0)  # passes defaults (0.4x floor)
        bands = dict(DEFAULT_BANDS)
        bands["qps"] = ToleranceBand(min_ratio=0.9)
        violations, _ = compare_snapshots(make_snapshot(), fresh, bands=bands)
        assert any("qps" in v for v in violations)

    def test_all_default_bands_checked(self):
        _, report = compare_snapshots(make_snapshot(), make_snapshot())
        assert len(report) == len(DEFAULT_BANDS)

    def test_compare_does_not_mutate_inputs(self):
        baseline, fresh = make_snapshot(), make_snapshot(qps=100.0)
        base_copy = copy.deepcopy(baseline)
        fresh_copy = copy.deepcopy(fresh)
        compare_snapshots(baseline, fresh)
        assert baseline == base_copy and fresh == fresh_copy


class TestBandOverrides:
    def test_throughput_override_becomes_floor(self):
        metric, band = parse_band_override("qps=0.8")
        assert metric == "qps"
        assert band.min_ratio == 0.8 and band.max_ratio is None

    def test_latency_override_becomes_ceiling(self):
        metric, band = parse_band_override("latency_ms.search.p99_ms=2.0")
        assert band.max_ratio == 2.0 and band.min_ratio is None

    def test_unknown_metric_defaults_to_ceiling(self):
        _, band = parse_band_override("latency_ms.search.max_ms=3.0")
        assert band.max_ratio == 3.0

    def test_bad_specs_raise(self):
        with pytest.raises(WorkloadError):
            parse_band_override("qps")
        with pytest.raises(WorkloadError):
            parse_band_override("qps=fast")
        with pytest.raises(WorkloadError):
            parse_band_override("qps=-1")


class TestMain:
    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document) + "\n")
        return str(path)

    def test_exit_zero_when_within_bands(self, tmp_path, capsys):
        baseline = self.write(tmp_path, "base.json", make_snapshot())
        fresh = self.write(tmp_path, "fresh.json", make_snapshot(qps=900.0))
        assert main([baseline, fresh]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        baseline = self.write(tmp_path, "base.json", make_snapshot())
        fresh = self.write(tmp_path, "fresh.json", make_snapshot(qps=100.0))
        assert main([baseline, fresh]) == 1
        assert "regression" in capsys.readouterr().out

    def test_exit_two_on_missing_file(self, tmp_path, capsys):
        baseline = self.write(tmp_path, "base.json", make_snapshot())
        assert main([baseline, str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_exit_two_on_wrong_schema(self, tmp_path, capsys):
        baseline = self.write(tmp_path, "base.json", make_snapshot())
        bad = make_snapshot()
        bad["schema"] = "repro-loadtest/v999"
        fresh = self.write(tmp_path, "fresh.json", bad)
        assert main([baseline, fresh]) == 2
        assert "schema" in capsys.readouterr().err

    def test_exit_two_on_bad_band_spec(self, tmp_path, capsys):
        baseline = self.write(tmp_path, "base.json", make_snapshot())
        fresh = self.write(tmp_path, "fresh.json", make_snapshot())
        assert main([baseline, fresh, "--band", "qps=banana"]) == 2

    def test_band_override_changes_the_verdict(self, tmp_path):
        baseline = self.write(tmp_path, "base.json", make_snapshot())
        fresh = self.write(tmp_path, "fresh.json", make_snapshot(qps=700.0))
        assert main([baseline, fresh]) == 0
        assert main([baseline, fresh, "--band", "qps=0.9"]) == 1
