"""The load harness: deterministic plans, both loop modes, snapshots."""

import json

import pytest

from repro.errors import WorkloadError
from repro.loadtest import (
    LoadTestConfig,
    LoadTestHarness,
    run_load_test,
)
from repro.loadtest.snapshot import (
    SNAPSHOT_SCHEMA,
    read_snapshot,
    snapshot_document,
    validate_snapshot,
    write_snapshot,
)
from repro.observability import counter_value, export_loadtest
from repro.search.engine import EngineConfig
from repro.sharding.engine import ShardedSearchEngine

#: Small-and-fast engine shape shared by every harness test.
ENGINE_CONFIG = EngineConfig(num_lists=64, block_size=4096, branching=None)

#: A quick run: big enough to exercise both op kinds, small enough for CI.
QUICK = dict(
    clients=2,
    duration=0.4,
    preload_docs=30,
    ingest_pool=30,
    vocabulary_size=300,
    plan_ops_per_client=200,
)


@pytest.fixture()
def engine():
    sharded = ShardedSearchEngine(ENGINE_CONFIG, num_shards=2)
    yield sharded
    sharded.close()


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(WorkloadError):
            LoadTestConfig(clients=0)
        with pytest.raises(WorkloadError):
            LoadTestConfig(duration=0)
        with pytest.raises(WorkloadError):
            LoadTestConfig(mix=1.5)
        with pytest.raises(WorkloadError):
            LoadTestConfig(arrival_rate=-1)
        with pytest.raises(WorkloadError):
            LoadTestConfig(preload_docs=0)
        with pytest.raises(WorkloadError):
            LoadTestConfig(drift_stride=-1)

    def test_to_dict_round_trips_the_workload_knobs(self):
        cfg = LoadTestConfig(clients=3, mix=0.5, seed=9)
        doc = cfg.to_dict()
        assert doc["clients"] == 3
        assert doc["mix"] == 0.5
        assert doc["seed"] == 9


class TestPlan:
    def test_plan_is_deterministic_under_seed(self, engine):
        cfg = LoadTestConfig(seed=5, **QUICK)
        plan_a = LoadTestHarness(engine, cfg).build_plan()
        plan_b = LoadTestHarness(engine, cfg).build_plan()
        assert plan_a == plan_b

    def test_plan_changes_with_seed(self, engine):
        a = LoadTestHarness(engine, LoadTestConfig(seed=1, **QUICK)).build_plan()
        b = LoadTestHarness(engine, LoadTestConfig(seed=2, **QUICK)).build_plan()
        assert a != b

    def test_mix_shapes_op_kinds(self, engine):
        all_search = LoadTestHarness(
            engine, LoadTestConfig(mix=1.0, **QUICK)
        ).build_plan()
        assert all(
            op.kind == "search" for ops in all_search for op in ops
        )
        all_ingest = LoadTestHarness(
            engine, LoadTestConfig(mix=0.0, **QUICK)
        ).build_plan()
        assert all(
            op.kind == "ingest" for ops in all_ingest for op in ops
        )

    def test_drift_plan_differs_from_stable(self, engine):
        stable = LoadTestHarness(
            engine, LoadTestConfig(**QUICK)
        ).build_plan()
        drifting = LoadTestHarness(
            engine, LoadTestConfig(drift_stride=5, **QUICK)
        ).build_plan()
        assert stable != drifting


class TestRun:
    def test_closed_loop_run(self, engine):
        result = run_load_test(engine, LoadTestConfig(**QUICK))
        assert result.mode == "closed"
        assert result.errors == 0
        assert result.searches > 0
        assert result.ingests > 0
        assert result.operations == result.searches + result.ingests
        assert result.qps > 0
        assert result.shards == 2
        assert result.search_latency.count == result.searches
        assert result.ingest_latency.count == result.ingests
        assert (
            result.search_latency.p50
            <= result.search_latency.p95
            <= result.search_latency.p99
        )

    def test_open_loop_run(self, engine):
        result = run_load_test(
            engine, LoadTestConfig(arrival_rate=100.0, **QUICK)
        )
        assert result.mode == "open"
        assert result.errors == 0
        # An open loop at 100 ops/s for 0.4s issues roughly 40 ops, not
        # thousands: the schedule, not the engine, set the pace.
        assert result.operations < 200

    def test_ingest_bytes_pulled_from_metrics_registry(self, engine):
        result = run_load_test(engine, LoadTestConfig(mix=0.5, **QUICK))
        assert result.ingests > 0
        assert result.ingest_bytes > 0
        assert result.ingest_mb_per_s > 0
        # The preload also flows through the metered batch path, so the
        # registry total is at least what the timed run ingested.
        total = counter_value(engine.metrics, "repro_ingest_bytes_total")
        assert total is not None and total >= result.ingest_bytes

    def test_searches_match_corpus_vocabulary(self, engine):
        """Zipfian queries actually hit the preloaded corpus."""
        harness = LoadTestHarness(engine, LoadTestConfig(mix=1.0, **QUICK))
        harness.preload()
        queries = [op.payload for op in harness.build_plan()[0][:50]]
        hits = sum(
            1 for q in queries if engine.search(q, top_k=3)
        )
        assert hits > len(queries) // 2

    def test_result_to_dict_has_the_banded_metrics(self, engine):
        result = run_load_test(engine, LoadTestConfig(**QUICK))
        doc = result.to_dict()
        for key in (
            "qps",
            "error_rate",
            "ingest_mb_per_s",
            "ingest_docs_per_s",
            "shards",
        ):
            assert key in doc
        assert "p99_ms" in doc["latency_ms"]["search"]
        assert "p99_ms" in doc["latency_ms"]["ingest"]


class TestSnapshot:
    def test_write_read_round_trip(self, engine, tmp_path):
        result = run_load_test(engine, LoadTestConfig(**QUICK))
        path = str(tmp_path / "BENCH_LOADTEST.json")
        written = write_snapshot(result, path)
        loaded = read_snapshot(path)
        assert loaded == written
        assert loaded["schema"] == SNAPSHOT_SCHEMA
        assert loaded["seed"] == result.config.seed
        assert loaded["metrics"]["qps"] == result.qps

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(WorkloadError):
            validate_snapshot({"schema": "repro-metrics/v1"})
        with pytest.raises(WorkloadError):
            validate_snapshot({"schema": SNAPSHOT_SCHEMA})  # no sections
        with pytest.raises(WorkloadError):
            validate_snapshot(
                {
                    "schema": SNAPSHOT_SCHEMA,
                    "config": {},
                    "metrics": {"latency_ms": {}},
                }
            )

    def test_read_rejects_missing_and_malformed_files(self, tmp_path):
        with pytest.raises(WorkloadError):
            read_snapshot(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        with pytest.raises(WorkloadError):
            read_snapshot(str(bad))

    def test_export_loadtest_gauges(self, engine):
        result = run_load_test(engine, LoadTestConfig(**QUICK))
        export_loadtest(engine.metrics, result, run="quick")
        assert counter_value(
            engine.metrics, "repro_loadtest_qps", run="quick"
        ) == pytest.approx(result.qps)
        assert (
            counter_value(
                engine.metrics, "repro_loadtest_search_p99_ms", run="quick"
            )
            is not None
        )

    def test_snapshot_document_matches_write(self, engine, tmp_path):
        result = run_load_test(engine, LoadTestConfig(**QUICK))
        path = tmp_path / "snap.json"
        write_snapshot(result, str(path))
        assert json.loads(path.read_text()) == snapshot_document(result)


class _FlakySearchEngine:
    """Delegates everything but makes every search fail."""

    def __init__(self, engine):
        self._engine = engine

    def search(self, query, top_k=10):
        raise RuntimeError("query plane down")

    def __getattr__(self, name):
        return getattr(self._engine, name)


class TestErrorAccounting:
    def test_exception_classes_land_in_the_result(self, engine):
        result = run_load_test(
            _FlakySearchEngine(engine), LoadTestConfig(mix=1.0, **QUICK)
        )
        assert result.errors > 0
        assert result.error_classes == {"RuntimeError": result.errors}
        assert result.to_dict()["errors_by_class"] == result.error_classes
        assert "RuntimeError" in result.summary()

    def test_clean_run_reports_no_error_classes(self, engine):
        result = run_load_test(engine, LoadTestConfig(**QUICK))
        assert result.errors == 0
        assert result.error_classes == {}
        assert result.to_dict()["errors_by_class"] == {}
