"""LatencyRecorder: thread safety, determinism, and percentile laws.

The two properties the harness design leans on (ISSUE 6):

* percentiles are ordered: ``p50 <= p95 <= p99`` for any input;
* merging per-client recorders is equivalent to one global recorder —
  exactly, whenever the combined samples fit the reservoir.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.loadtest.recorder import LatencyRecorder

latencies = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=32),
    min_size=0,
    max_size=200,
)


class TestBasics:
    def test_empty_summary_is_zeroes(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.p50 == summary.p95 == summary.p99 == 0.0

    def test_single_observation_is_every_percentile(self):
        recorder = LatencyRecorder()
        recorder.record(0.25)
        summary = recorder.summary()
        assert summary.count == 1
        assert summary.p50 == summary.p95 == summary.p99 == 0.25
        assert summary.minimum == summary.maximum == 0.25

    def test_percentiles_of_known_sequence(self):
        recorder = LatencyRecorder()
        recorder.record_many(i / 1000.0 for i in range(1, 101))
        assert recorder.percentile(50) == pytest.approx(0.050)
        assert recorder.percentile(95) == pytest.approx(0.095)
        assert recorder.percentile(99) == pytest.approx(0.099)
        assert recorder.percentile(100) == pytest.approx(0.100)

    def test_rejects_bad_inputs(self):
        with pytest.raises(WorkloadError):
            LatencyRecorder(0)
        with pytest.raises(WorkloadError):
            LatencyRecorder().record(-0.1)
        with pytest.raises(WorkloadError):
            LatencyRecorder().percentile(101)

    def test_summary_to_dict_converts_to_ms(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        doc = recorder.summary().to_dict()
        assert doc["p50_ms"] == pytest.approx(500.0)
        assert doc["count"] == 1


class TestReservoir:
    def test_count_tracks_all_observations_beyond_capacity(self):
        recorder = LatencyRecorder(capacity=10, seed=3)
        recorder.record_many(i / 100.0 for i in range(100))
        assert recorder.count == 100
        summary = recorder.summary()
        assert summary.count == 100
        # Mean/min/max are exact even when the reservoir downsamples.
        assert summary.minimum == 0.0
        assert summary.maximum == pytest.approx(0.99)
        assert summary.mean == pytest.approx(sum(range(100)) / 100 / 100.0)

    def test_deterministic_under_seed(self):
        def build():
            recorder = LatencyRecorder(capacity=16, seed=7)
            recorder.record_many(((i * 37) % 100) / 100.0 for i in range(500))
            return recorder.summary()

        assert build() == build()

    def test_different_seeds_may_retain_different_samples(self):
        def reservoir(seed):
            recorder = LatencyRecorder(capacity=8, seed=seed)
            recorder.record_many(((i * 37) % 100) / 100.0 for i in range(500))
            return sorted(recorder._samples)

        distinct = {tuple(reservoir(seed)) for seed in range(8)}
        assert len(distinct) > 1


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        recorder = LatencyRecorder(capacity=100_000, seed=0)
        per_thread = 2_000
        threads = [
            threading.Thread(
                target=lambda: recorder.record_many(
                    [0.001] * per_thread
                )
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.count == 8 * per_thread
        assert len(recorder._samples) == 8 * per_thread
        assert recorder.summary().mean == pytest.approx(0.001)

    def test_concurrent_recording_with_overflow_keeps_capacity(self):
        recorder = LatencyRecorder(capacity=64, seed=0)
        threads = [
            threading.Thread(
                target=lambda: recorder.record_many([0.002] * 1_000)
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.count == 4_000
        assert len(recorder._samples) == 64


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(latencies)
    def test_percentiles_are_ordered(self, values):
        recorder = LatencyRecorder(capacity=64, seed=1)
        recorder.record_many(values)
        summary = recorder.summary()
        assert summary.p50 <= summary.p95 <= summary.p99
        if values:
            assert summary.minimum <= summary.p50
            assert summary.p99 <= summary.maximum

    @settings(max_examples=60, deadline=None)
    @given(st.lists(latencies, min_size=1, max_size=6))
    def test_merged_per_client_equals_global(self, per_client):
        """Merging under-capacity recorders == one global recorder."""
        total = sum(len(chunk) for chunk in per_client)
        capacity = max(total, 1)
        clients = []
        for i, chunk in enumerate(per_client):
            recorder = LatencyRecorder(capacity=capacity, seed=100 + i)
            recorder.record_many(chunk)
            clients.append(recorder)
        merged = LatencyRecorder.merged(clients, capacity=capacity, seed=0)

        global_recorder = LatencyRecorder(capacity=capacity, seed=0)
        for chunk in per_client:
            global_recorder.record_many(chunk)

        ours = merged.summary()
        theirs = global_recorder.summary()
        assert ours.count == theirs.count
        # Percentiles/min/max come from the identical retained sample
        # set, so they match exactly; the mean is a float sum whose
        # addition order differs between the two paths.
        assert ours.minimum == theirs.minimum
        assert ours.maximum == theirs.maximum
        assert ours.p50 == theirs.p50
        assert ours.p95 == theirs.p95
        assert ours.p99 == theirs.p99
        assert ours.mean == pytest.approx(theirs.mean, rel=1e-12, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(latencies, min_size=1, max_size=4))
    def test_merge_overflow_keeps_exact_aggregates(self, per_client):
        """Even when merge downsamples, count/mean/min/max stay exact."""
        flat = [v for chunk in per_client for v in chunk]
        clients = []
        for i, chunk in enumerate(per_client):
            recorder = LatencyRecorder(capacity=max(1, len(chunk)), seed=i)
            recorder.record_many(chunk)
            clients.append(recorder)
        merged = LatencyRecorder.merged(clients, capacity=5, seed=0)
        assert merged.count == len(flat)
        summary = merged.summary()
        if flat:
            assert summary.minimum == min(flat)
            assert summary.maximum == max(flat)
            assert summary.mean == pytest.approx(
                sum(flat) / len(flat), rel=1e-9
            )
            assert summary.p50 <= summary.p95 <= summary.p99
