"""Adapter + engine-integration tests: one snapshot covers every layer."""

import pytest

from repro.observability import (
    NullMetricsRegistry,
    QueryTrace,
    engine_metrics,
    export_faults,
    export_journal,
    export_store,
    metrics_document,
)
from repro.observability.metrics import MetricsRegistry
from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.sharding.engine import ShardedSearchEngine
from repro.worm.faults import FaultInjectingWormDevice
from repro.worm.persistent import JournaledWormDevice
from repro.worm.storage import CachedWormStore

CONFIG = EngineConfig(num_lists=64, block_size=1024)


def _value(snapshot, name, **labels):
    for series in snapshot[name]["series"]:
        if series["labels"] == {k: str(v) for k, v in labels.items()}:
            return series["value"]
    raise AssertionError(f"no series {labels} in {name}")


class TestStoreExport:
    def test_store_and_cache_counters_exported(self):
        registry = MetricsRegistry()
        store = CachedWormStore(4, block_size=512)
        f = store.create_file("x")
        for i in range(20):
            store.append_record("x", b"payload-%d" % i)
        for block in range(f.num_blocks):
            store.read_block("x", block)
        export_store(registry, store, shard="7")
        snap = registry.snapshot()
        assert _value(snap, "repro_store_block_reads_total", shard=7) == (
            store.io.block_reads
        )
        assert _value(snap, "repro_cache_hits_total", shard=7) == (
            store.cache.stats.hits
        )
        assert _value(snap, "repro_cache_hit_rate", shard=7) == pytest.approx(
            store.cache.stats.hit_rate
        )

    def test_export_is_a_set_not_an_increment(self):
        registry = MetricsRegistry()
        store = CachedWormStore(None, block_size=512)
        store.create_file("x")
        store.append_record("x", b"p")
        export_store(registry, store)
        export_store(registry, store)  # refresh must not double
        snap = registry.snapshot()
        assert _value(snap, "repro_cache_misses_total", shard=0) == (
            store.cache.stats.misses
        )

    def test_null_registry_short_circuits(self):
        registry = NullMetricsRegistry()
        store = CachedWormStore(None, block_size=512)
        export_store(registry, store)
        assert registry.snapshot() == {}


class TestJournalAndFaultExport:
    def test_journal_counters_exported(self, tmp_path):
        registry = MetricsRegistry()
        device = JournaledWormDevice(str(tmp_path / "j.worm"))
        store = CachedWormStore(None, device=device)
        store.create_file("f")
        store.append_record("f", b"hello")
        export_journal(registry, device, shard="0")
        snap = registry.snapshot()
        assert _value(snap, "repro_journal_records_total", shard=0) == (
            device.records
        )
        assert _value(snap, "repro_journal_bytes", shard=0) == (
            device.journal_bytes
        )
        assert device.records >= 2
        device.close()

    def test_plain_device_is_a_noop(self):
        registry = MetricsRegistry()
        store = CachedWormStore(None, block_size=512)
        export_journal(registry, store.device)
        assert "repro_journal_records_total" not in registry.snapshot()

    def test_fault_hit_counts_exported(self, tmp_path):
        registry = MetricsRegistry()
        device = FaultInjectingWormDevice(str(tmp_path / "f.worm"))
        store = CachedWormStore(None, device=device)
        store.create_file("f")
        store.append_record("f", b"hello")
        export_faults(registry, device, shard="0")
        snap = registry.snapshot()
        fault_series = snap["repro_fault_point_calls_total"]["series"]
        points = {s["labels"]["point"]: s["value"] for s in fault_series}
        assert points  # WAL stages were counted
        assert points == {
            k: v for k, v in device.plan.counts.items()
        }
        assert _value(snap, "repro_fault_crashed", shard=0) == 0
        device.close()


class TestEngineIntegration:
    def test_single_engine_snapshot_covers_all_layers(self):
        engine = TrustworthySearchEngine(CONFIG)
        for i in range(30):
            engine.index_document(f"alpha beta doc{i}")
        engine.search("+alpha +beta")
        snap = engine_metrics(engine).snapshot()
        # query layer
        assert _value(snap, "repro_queries_total", mode="all") == 1
        assert snap["repro_query_stage_seconds"]["type"] == "histogram"
        assert _value(snap, "repro_join_seeks_total") > 0
        # ingest layer
        assert _value(snap, "repro_documents_indexed_total") == 30
        # storage + cache layer (adapter-exported)
        assert _value(snap, "repro_cache_hits_total", shard=0) == (
            engine.store.cache.stats.hits
        )
        # archive gauges
        assert _value(snap, "repro_archive_documents") == 30

    def test_jump_follow_counter_tracks_index(self):
        engine = TrustworthySearchEngine(
            EngineConfig(num_lists=4, block_size=512, branching=4)
        )
        for i in range(200):
            engine.index_term_counts({f"t{i % 40}": 1, "common": 1})
        engine.search("+t3 +common")
        snap = engine_metrics(engine).snapshot()
        follows = sum(j.pointers_followed for j in engine._jumps.values())
        assert follows > 0
        assert _value(snap, "repro_jump_pointer_follows_total") == follows

    def test_sharded_engine_shares_one_registry(self):
        engine = ShardedSearchEngine(CONFIG, num_shards=3)
        engine.index_batch([f"alpha beta doc{i}" for i in range(30)])
        trace = QueryTrace("+alpha +beta")
        engine.search("+alpha +beta", trace=trace)
        engine.close()
        snap = engine_metrics(engine).snapshot()
        # every shard records its own join/resolve stage timings...
        stage_series = snap["repro_query_stage_seconds"]["series"]
        join_shards = {
            s["labels"]["shard"]
            for s in stage_series
            if s["labels"]["stage"] == "join"
        }
        assert join_shards == {"0", "1", "2"}
        # ...and its own queue/run latency histograms in the executor
        hist = snap["repro_shard_run_seconds"]["series"]
        assert {s["labels"]["shard"] for s in hist} == {"0", "1", "2"}
        assert _value(snap, "repro_fanout_queries_total") == 1
        # coordinator store exported under its own label
        assert _value(
            snap, "repro_store_block_writes_total", shard="coordinator"
        ) == engine.coordinator.io.block_writes
        # per-shard spans carry the queue/run split
        shard_spans = [s for s in trace.spans if s.name == "shard"]
        assert {s.attrs["shard"] for s in shard_spans} == {0, 1, 2}
        assert all("queue_seconds" in s.attrs for s in shard_spans)

    def test_null_metrics_run_is_unmetered_but_correct(self):
        metered = TrustworthySearchEngine(CONFIG)
        unmetered = TrustworthySearchEngine(
            CONFIG, metrics=NullMetricsRegistry()
        )
        for engine in (metered, unmetered):
            for i in range(10):
                engine.index_document(f"alpha beta doc{i}")
        assert [r.doc_id for r in metered.search("+alpha +beta")] == [
            r.doc_id for r in unmetered.search("+alpha +beta")
        ]
        assert unmetered.metrics.snapshot() == {}

    def test_metrics_document_schema(self):
        engine = TrustworthySearchEngine(CONFIG)
        engine.index_document("alpha beta")
        trace = QueryTrace("alpha")
        engine.search("alpha", trace=trace)
        doc = metrics_document(engine, traces=[trace])
        assert doc["schema"] == "repro-metrics/v1"
        assert "repro_queries_total" in doc["metrics"]
        assert doc["traces"][0]["query"] == "alpha"
        names = [s["name"] for s in doc["traces"][0]["spans"]]
        assert names[0] == "parse"
        assert "rank" in names


class TestTraceOnQueryPath:
    def test_conjunctive_trace_records_join_micro_costs(self):
        engine = TrustworthySearchEngine(CONFIG)
        for i in range(50):
            engine.index_document(f"alpha beta doc{i}")
        trace = QueryTrace("+alpha +beta")
        engine.search("+alpha +beta", trace=trace)
        by_name = {s.name: s for s in trace.spans}
        assert {"parse", "resolve", "join", "rank"} <= set(by_name)
        join = by_name["join"]
        assert join.attrs["matches"] == 50
        assert join.attrs["seeks"] > 0
        assert join.attrs["blocks_read"] >= 1

    def test_verify_stage_traced(self):
        engine = TrustworthySearchEngine(CONFIG)
        engine.index_document("alpha beta")
        trace = QueryTrace("alpha")
        engine.search("alpha", verify=True, trace=trace)
        verify = [s for s in trace.spans if s.name == "verify"]
        assert len(verify) == 1
        assert verify[0].attrs["ok"] is True
