"""Unit tests for the dependency-free metrics registry."""

import json

import pytest

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsError,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounterAndGauge:
    def test_label_free_counter_proxies_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "a counter")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["c_total"]["series"][0]["value"] == 5

    def test_labelled_counter_keeps_series_apart(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labels=("shard",))
        family.labels(shard="0").inc(2)
        family.labels(shard="1").inc(3)
        series = registry.snapshot()["c_total"]["series"]
        assert [(s["labels"]["shard"], s["value"]) for s in series] == [
            ("0", 2),
            ("1", 3),
        ]

    def test_bound_series_is_stable_identity(self):
        family = MetricsRegistry().counter("c_total", labels=("shard",))
        assert family.labels(shard=0) is family.labels(shard="0")

    def test_gauge_goes_down(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(-4)
        assert registry.snapshot()["g"]["series"][0]["value"] == 6

    def test_missing_label_rejected(self):
        family = MetricsRegistry().counter("c_total", labels=("shard",))
        with pytest.raises(MetricsError):
            family.labels(mode="any")

    def test_extra_label_rejected(self):
        family = MetricsRegistry().counter("c_total", labels=("shard",))
        with pytest.raises(MetricsError):
            family.labels(shard="0", mode="any")

    def test_label_free_access_on_labelled_family_rejected(self):
        family = MetricsRegistry().counter("c_total", labels=("shard",))
        with pytest.raises(MetricsError):
            family.inc()


class TestRegistration:
    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels=("shard",))
        b = registry.counter("x_total", labels=("shard",))
        assert a is b

    def test_conflicting_kind_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricsError):
            registry.gauge("x_total")

    def test_conflicting_label_schema_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("shard",))
        with pytest.raises(MetricsError):
            registry.counter("x_total", labels=("mode",))


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        entry = registry.snapshot()["h_seconds"]["series"][0]
        assert entry["count"] == 5
        assert entry["sum"] == pytest.approx(5.605)
        assert entry["buckets"] == {
            "0.01": 1,
            "0.1": 3,
            "1": 4,
            "+Inf": 5,
        }

    def test_boundary_value_counts_as_le(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.1)
        buckets = registry.snapshot()["h"]["series"][0]["buckets"]
        assert buckets["0.1"] == 1

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestExposition:
    def test_snapshot_is_json_stable(self):
        def build():
            registry = MetricsRegistry()
            family = registry.counter("c_total", "help", labels=("shard",))
            family.labels(shard="1").inc(3)
            family.labels(shard="0").inc(2)
            registry.histogram("h_seconds", buckets=(0.1,)).observe(0.05)
            return json.dumps(registry.snapshot(), sort_keys=True)

        assert build() == build()

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "things counted", labels=("shard",)).labels(
            shard="0"
        ).inc(7)
        registry.histogram("h_seconds", "a histogram", buckets=(0.5,)).observe(
            0.25
        )
        text = registry.render_prometheus()
        assert "# HELP c_total things counted" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{shard="0"} 7' in text
        assert 'h_seconds_bucket{le="0.5"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.25" in text
        assert "h_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("term",)).labels(
            term='a"b\\c\nd'
        ).inc()
        text = registry.render_prometheus()
        assert 'term="a\\"b\\\\c\\nd"' in text


class TestNullRegistry:
    def test_absorbs_everything_and_snapshots_empty(self):
        registry = NullMetricsRegistry()
        assert registry.enabled is False
        counter = registry.counter("c_total", labels=("shard",))
        counter.labels(shard="0").inc(5)
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(3)
        assert registry.snapshot() == {}
        assert registry.render_prometheus() == ""
        assert registry.families() == []
