"""Unit tests for the per-query span recorder."""

import threading
from time import perf_counter

from repro.observability.trace import QueryTrace


class TestSpanNesting:
    def test_context_manager_nests_spans(self):
        trace = QueryTrace("q")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        outer, inner = trace.spans
        assert outer.parent is None
        assert inner.parent == outer.index
        assert inner.end is not None and outer.end is not None
        assert outer.seconds >= inner.seconds

    def test_sibling_spans_share_parent(self):
        trace = QueryTrace("q")
        with trace.span("root"):
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
        root, a, b = trace.spans
        assert a.parent == root.index == b.parent

    def test_note_attaches_attributes(self):
        trace = QueryTrace("q")
        with trace.span("join", terms=2) as span:
            span.note(seeks=17, blocks_read=4)
        assert trace.spans[0].attrs == {
            "terms": 2,
            "seeks": 17,
            "blocks_read": 4,
        }

    def test_out_of_order_finish_keeps_stack_consistent(self):
        trace = QueryTrace("q")
        outer = trace.begin("outer")
        inner = trace.begin("inner")
        trace.finish(outer)  # closed before its child
        trace.finish(inner)
        with trace.span("next"):
            pass
        assert trace.spans[2].parent is None


class TestRecord:
    def test_record_converts_perf_counter_times(self):
        trace = QueryTrace("q")
        start = perf_counter()
        end = start + 0.25
        span = trace.record("shard", start=start, end=end, shard=1)
        assert span.seconds == 0.25
        assert span.attrs == {"shard": 1}
        assert span.parent is None

    def test_record_is_thread_safe(self):
        trace = QueryTrace("q")

        def worker(i):
            now = perf_counter()
            for j in range(50):
                trace.record("shard", start=now, end=now, shard=i, step=j)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.spans) == 200
        assert [s.index for s in trace.spans] == list(range(200))


class TestExposition:
    def test_to_dict_is_stable_and_sorted(self):
        trace = QueryTrace("alpha beta")
        with trace.span("join", zeta=1, alpha=2):
            pass
        doc = trace.to_dict()
        assert doc["query"] == "alpha beta"
        (span_doc,) = doc["spans"]
        assert list(span_doc["attrs"]) == ["alpha", "zeta"]
        assert span_doc["seconds"] >= 0

    def test_pretty_renders_tree(self):
        trace = QueryTrace("q")
        with trace.span("parse"):
            pass
        with trace.span("join", seeks=3):
            with trace.span("zigzag"):
                pass
        text = trace.pretty()
        assert "parse" in text and "zigzag" in text
        assert "seeks=3" in text
        # The child is indented one level deeper than its parent.
        def indent(s):
            return len(s) - len(s.lstrip())

        join_line = next(ln for ln in text.splitlines() if "join" in ln)
        zig_line = next(ln for ln in text.splitlines() if "zigzag" in ln)
        assert indent(zig_line) > indent(join_line)

    def test_empty_trace_total_is_zero(self):
        assert QueryTrace("q").total_seconds == 0.0
