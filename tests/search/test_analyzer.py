"""Unit tests for the tokenizer."""

import pytest

from repro.search.analyzer import Analyzer, DEFAULT_STOPWORDS


@pytest.fixture()
def analyzer():
    return Analyzer()


class TestTokens:
    def test_lowercase_and_split(self, analyzer):
        assert analyzer.tokens("Hello World") == ["hello", "world"]

    def test_punctuation_stripped(self, analyzer):
        assert analyzer.tokens("re: Q3-budget, v2!") == ["re", "q3", "budget", "v2"]

    def test_stopwords_removed(self, analyzer):
        assert analyzer.tokens("the cat and the hat") == ["cat", "hat"]

    def test_min_length(self):
        analyzer = Analyzer(min_length=3)
        assert analyzer.tokens("go run far") == ["run", "far"]

    def test_numbers_kept(self, analyzer):
        assert analyzer.tokens("revenue 2004") == ["revenue", "2004"]

    def test_empty_text(self, analyzer):
        assert analyzer.tokens("") == []

    def test_duplicates_preserved(self, analyzer):
        assert analyzer.tokens("spam spam spam") == ["spam"] * 3


class TestTermCounts:
    def test_counts(self, analyzer):
        counts = analyzer.term_counts("audit memo audit")
        assert counts == {"audit": 2, "memo": 1}

    def test_all_stopwords(self, analyzer):
        assert analyzer.term_counts("the and of") == {}


class TestQueryTerms:
    def test_distinct_first_occurrence_order(self, analyzer):
        assert analyzer.query_terms("stewart waksal stewart") == [
            "stewart",
            "waksal",
        ]


class TestConfiguration:
    def test_empty_stopwords(self):
        analyzer = Analyzer(stopwords=())
        assert analyzer.tokens("the cat") == ["the", "cat"]

    def test_invalid_min_length_rejected(self):
        with pytest.raises(ValueError):
            Analyzer(min_length=0)

    def test_default_stopwords_lowercase(self):
        assert all(w == w.lower() for w in DEFAULT_STOPWORDS)
