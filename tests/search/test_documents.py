"""Unit tests for the WORM-resident document store."""

import pytest

from repro.errors import UnknownFileError
from repro.search.documents import DocumentStore


@pytest.fixture()
def docs(store):
    return DocumentStore(store)


class TestCommit:
    def test_ids_assigned_monotonically(self, docs):
        assert docs.commit("a", commit_time=1) == 0
        assert docs.commit("b", commit_time=2) == 1
        assert docs.next_doc_id == 2
        assert len(docs) == 2

    def test_roundtrip(self, docs):
        doc_id = docs.commit("quarterly revenue memo", commit_time=7)
        doc = docs.get(doc_id)
        assert doc.text == "quarterly revenue memo"
        assert doc.commit_time == 7
        assert doc.doc_id == doc_id

    def test_large_document_spans_blocks(self, docs):
        text = "word " * 200  # > 256-byte blocks
        doc_id = docs.commit(text, commit_time=1)
        assert docs.get(doc_id).text == text

    def test_empty_document(self, docs):
        doc_id = docs.commit("", commit_time=1)
        assert docs.get(doc_id).text == ""

    def test_unicode(self, docs):
        doc_id = docs.commit("café ≠ cafe", commit_time=1)
        assert docs.get(doc_id).text == "café ≠ cafe"


class TestRead:
    def test_exists(self, docs):
        doc_id = docs.commit("x", commit_time=1)
        assert docs.exists(doc_id)
        assert not docs.exists(doc_id + 1)

    def test_get_missing_rejected(self, docs):
        with pytest.raises(UnknownFileError):
            docs.get(0)

    def test_iteration_in_id_order(self, docs):
        for i in range(5):
            docs.commit(f"doc {i}", commit_time=i)
        texts = [d.text for d in docs.documents()]
        assert texts == [f"doc {i}" for i in range(5)]

    def test_committed_text_immutable_via_device(self, docs, store):
        """The device refuses any overwrite of committed document bytes."""
        from repro.errors import FileExistsOnWormError

        doc_id = docs.commit("original", commit_time=1)
        name = f"doc/{doc_id:010d}"
        worm_file = store.open_file(name)
        block = worm_file.block(0)
        with pytest.raises(FileExistsOnWormError):
            # Even recreating the file under the same name is refused.
            store.create_file(name)
        # Appending *more* bytes is legal but does not alter the original.
        before = block.read()
        assert before == b"original"
