"""Integration tests for the end-to-end trustworthy search engine."""

import pytest

from repro.core.merge import PopularUnmergedMerge
from repro.errors import TamperDetectedError, WorkloadError
from repro.search.engine import EngineConfig, SearchResult, TrustworthySearchEngine
from repro.search.query import Query, QueryMode
from tests.helpers import build_engine


@pytest.fixture()
def engine():
    return build_engine()


class TestIngest:
    def test_ids_monotonic(self, engine):
        assert engine.index_document("another memo") == 6

    def test_documents_on_worm(self, engine):
        assert engine.documents.get(0).text.startswith("imclone")

    def test_vocabulary_grows(self, engine):
        before = engine.vocabulary_size
        engine.index_document("xylophone zebra")
        assert engine.vocabulary_size == before + 2

    def test_commit_times_monotonic(self, engine):
        engine.index_document("later doc", commit_time=100)
        with pytest.raises(WorkloadError):
            engine.index_document("backdated doc", commit_time=50)

    def test_index_term_counts_path(self, engine):
        doc_id = engine.index_term_counts({"gadget": 2, "widget": 1})
        assert [r.doc_id for r in engine.search("gadget")][0] == doc_id

    def test_real_time_update_no_buffering(self, engine):
        """A document is searchable the moment index_document returns."""
        doc_id = engine.index_document("immediately searchable unicorns")
        assert [r.doc_id for r in engine.search("unicorns")] == [doc_id]


class TestDisjunctiveSearch:
    def test_matches_any_term(self, engine):
        hits = {r.doc_id for r in engine.search("imclone finance")}
        assert hits == {0, 2, 3, 1, 5}

    def test_ranking_prefers_more_matching_terms(self, engine):
        results = engine.search("stewart waksal imclone")
        assert results[0].doc_id in (0, 3)  # docs with all three terms

    def test_top_k(self, engine):
        assert len(engine.search("imclone finance", top_k=2)) == 2

    def test_no_hits(self, engine):
        assert engine.search("nonexistentterm") == []

    def test_scores_descending(self, engine):
        results = engine.search("quarterly revenue")
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)


class TestConjunctiveSearch:
    def test_all_terms_required(self, engine):
        hits = [r.doc_id for r in engine.search("+stewart +waksal +imclone")]
        assert sorted(hits) == [0, 3]

    def test_conjunctive_vs_disjunctive(self, engine):
        any_hits = {r.doc_id for r in engine.search("quarterly finance")}
        all_hits = {r.doc_id for r in engine.search("+quarterly +finance")}
        assert all_hits <= any_hits
        assert all_hits == {1, 5}

    def test_absent_term_short_circuits(self, engine):
        assert engine.search("+imclone +nonexistentterm") == []

    def test_conjunctive_doc_ids_reports_blocks(self, engine):
        docs, blocks = engine.conjunctive_doc_ids(["imclone", "stewart"])
        assert sorted(docs) == [0, 3]
        assert blocks >= 1


class TestTimeRangeSearch:
    def test_range_filters_results(self, engine):
        hits = [r.doc_id for r in engine.search("imclone @0..2")]
        assert sorted(hits) == [0, 2]

    def test_query_object_interface(self, engine):
        q = Query(terms=("imclone",), mode=QueryMode.ANY, time_range=(3, 5))
        assert [r.doc_id for r in engine.search(q)] == [3]


class TestVerification:
    def test_clean_results_verify(self, engine):
        results = engine.search("imclone", verify=True)
        assert results  # no exception

    def test_stuffed_results_detected(self, engine):
        from repro.adversary.attacks import posting_stuffing_attack

        tid = engine.term_id("imclone")
        pl = engine._lists[engine._list_id_for(tid)]
        posting_stuffing_attack(pl, tid, count=4)
        with pytest.raises(TamperDetectedError):
            engine.search("imclone", verify=True)

    def test_verify_config_flag(self):
        engine = TrustworthySearchEngine(
            EngineConfig(num_lists=8, branching=None, verify_results=True)
        )
        engine.index_document("hello world memo")
        assert engine.search("memo")  # verification on by default, passes


class TestConfigurations:
    def test_no_jump_index_mode(self):
        engine = TrustworthySearchEngine(EngineConfig(num_lists=8, branching=None))
        engine.index_document("alpha beta gamma")
        engine.index_document("alpha delta")
        assert [r.doc_id for r in engine.search("+alpha +beta")] == [0]
        assert not engine._jumps

    def test_cosine_ranking(self):
        engine = TrustworthySearchEngine(
            EngineConfig(num_lists=8, branching=None, ranking="cosine")
        )
        engine.index_document("apple apple apple")
        engine.index_document("apple pear")
        results = engine.search("apple")
        assert results[0].doc_id == 0

    def test_custom_merge_strategy(self):
        strategy = PopularUnmergedMerge(16, popular_terms=[0, 1])
        engine = TrustworthySearchEngine(
            EngineConfig(num_lists=16, branching=None), merge_strategy=strategy
        )
        engine.index_document("first second third")
        assert [r.doc_id for r in engine.search("+first +third")] == [0]

    def test_invalid_config_rejected(self):
        with pytest.raises(WorkloadError):
            EngineConfig(num_lists=0)
        with pytest.raises(WorkloadError):
            EngineConfig(ranking="pagerank")

    def test_small_cache_engine_still_correct(self):
        engine = TrustworthySearchEngine(
            EngineConfig(num_lists=8, branching=2, cache_blocks=4, block_size=512)
        )
        for i in range(20):
            engine.index_document(f"common term{i} filler words here")
        hits = [r.doc_id for r in engine.search("common")]
        assert len(hits) == 10  # top_k default
        assert engine.store.io.total > 0  # cache pressure produced I/O


class TestRepr:
    def test_search_result_is_value_object(self):
        assert SearchResult(1, 2.0) == SearchResult(1, 2.0)
