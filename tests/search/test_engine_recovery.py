"""Restart-recovery tests: rebuild engine state from WORM.

The paper's trust argument requires that everything needed to answer
queries lives on WORM; application memory (lexicon map, ranking
statistics, jump-index path caches) is derived data.  These tests
simulate a restart by constructing a fresh engine over the same WORM
store and checking that queries, statistics and trust checks all
survive.
"""

import pytest

from repro.errors import TamperDetectedError
from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.worm.storage import CachedWormStore


CONFIG = EngineConfig(num_lists=32, branching=4, block_size=512)

TEXTS = [
    "imclone trading memo for stewart and waksal",
    "quarterly revenue audit for the finance team",
    "meeting notes about imclone drug development",
    "stewart waksal imclone november trading archive",
]


def build_engine():
    engine = TrustworthySearchEngine(CONFIG)
    for text in TEXTS:
        engine.index_document(text)
    return engine


def reopen(engine):
    """Simulate a restart: new engine object over the same WORM store."""
    return TrustworthySearchEngine(CONFIG, store=engine.store)


class TestRecovery:
    def test_lexicon_restored(self):
        engine = build_engine()
        reopened = reopen(engine)
        assert reopened.vocabulary_size == engine.vocabulary_size
        assert reopened.term_id("imclone") == engine.term_id("imclone")

    def test_queries_survive_restart(self):
        engine = build_engine()
        reopened = reopen(engine)
        assert [r.doc_id for r in reopened.search("+stewart +waksal")] == [0, 3]
        assert {r.doc_id for r in reopened.search("imclone")} == {0, 2, 3}

    def test_time_ranged_queries_survive(self):
        engine = build_engine()
        reopened = reopen(engine)
        hits = [r.doc_id for r in reopened.search("imclone @0..1")]
        assert hits == [0]

    def test_ranking_stats_rebuilt(self):
        engine = build_engine()
        reopened = reopen(engine)
        assert reopened.stats.num_docs == 4
        assert reopened.stats.df == engine.stats.df

    def test_ingest_continues_after_restart(self):
        engine = build_engine()
        reopened = reopen(engine)
        doc_id = reopened.index_document("fresh imclone disclosure filing")
        assert doc_id == len(TEXTS)
        assert doc_id in {r.doc_id for r in reopened.search("imclone")}
        # Commit clock resumed past the previous session's last commit.
        assert reopened.documents.get(doc_id).commit_time >= len(TEXTS)

    def test_results_verify_after_restart(self):
        engine = build_engine()
        reopened = reopen(engine)
        assert reopened.search("imclone", verify=True)

    def test_jump_indexes_rebuilt_and_extended(self):
        engine = build_engine()
        reopened = reopen(engine)
        for _ in range(30):
            reopened.index_document("imclone repeat filler entry")
        docs, _ = reopened.conjunctive_doc_ids(["imclone"])
        assert len(docs) == 3 + 30

    def test_tampered_posting_list_fails_reattach(self):
        from repro.core.posting import encode_posting

        engine = build_engine()
        tid = engine.term_id("imclone")
        name = engine._lists[engine._list_id_for(tid)].name
        # Mala appends an out-of-order posting between sessions.
        engine.store.device.open_file(name).append_record(encode_posting(0, tid))
        reopened = reopen(engine)
        with pytest.raises(TamperDetectedError):
            reopened.search("imclone")

    def test_tampered_commit_log_fails_reattach(self):
        import struct

        engine = build_engine()
        engine.store.device.open_file("engine/commit-times").append_record(
            struct.pack("<QI", 0, 999)
        )
        with pytest.raises(TamperDetectedError):
            reopen(engine)

    def test_fresh_store_unaffected(self):
        engine = TrustworthySearchEngine(CONFIG, store=CachedWormStore(None))
        assert engine.vocabulary_size == 0
        assert len(engine.documents) == 0
