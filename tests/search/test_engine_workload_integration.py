"""End-to-end: the synthetic paper workload through the real engine.

Ingest a slice of the synthetic corpus through
:class:`TrustworthySearchEngine` (full WORM path: document store,
merged lists, jump indexes, commit-time log) and cross-check every
query form against brute-force answers computed from the raw term
vectors.
"""

import pytest

from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.workloads.vocabulary import Vocabulary

NUM_DOCS = 300


@pytest.fixture(scope="module")
def world(tiny_workload):
    """Engine loaded with synthetic documents + brute-force mirrors."""
    vocabulary = Vocabulary(tiny_workload.vocabulary_size)
    engine = TrustworthySearchEngine(
        EngineConfig(num_lists=64, branching=8, block_size=1024)
    )
    term_sets = {}
    for doc in tiny_workload.documents[:NUM_DOCS]:
        counts = {
            vocabulary.word(int(t)): int(c)
            for t, c in zip(doc.term_ids, doc.term_counts)
        }
        doc_id = engine.index_term_counts(counts, store_text=False)
        assert doc_id == doc.doc_id
        term_sets[doc_id] = set(counts)
    return engine, term_sets, vocabulary


def _brute_disjunctive(term_sets, words):
    return {d for d, terms in term_sets.items() if any(w in terms for w in words)}


def _brute_conjunctive(term_sets, words):
    return {d for d, terms in term_sets.items() if all(w in terms for w in words)}


class TestWorkloadIntegration:
    def test_corpus_loaded(self, world):
        engine, term_sets, _ = world
        assert len(engine.documents) == NUM_DOCS
        assert engine.vocabulary_size >= 100

    def test_disjunctive_queries_match_brute_force(self, world, tiny_workload):
        engine, term_sets, vocabulary = world
        checked = 0
        for query in tiny_workload.queries[:120]:
            words = [vocabulary.word(int(t)) for t in query.term_ids]
            expected = _brute_disjunctive(term_sets, words)
            got = {
                r.doc_id
                for r in engine.search(
                    " ".join(words), top_k=NUM_DOCS + 1
                )
            }
            assert got == expected, words
            checked += 1
        assert checked == 120

    def test_conjunctive_queries_match_brute_force(self, world, tiny_workload):
        engine, term_sets, vocabulary = world
        for query in tiny_workload.queries_with_terms(2, limit=40) + \
                tiny_workload.queries_with_terms(3, limit=20):
            words = [vocabulary.word(int(t)) for t in query.term_ids]
            expected = sorted(_brute_conjunctive(term_sets, words))
            got, _ = engine.conjunctive_doc_ids(words)
            assert got == expected, words

    def test_time_windows_match_ingest_order(self, world):
        engine, _, _ = world
        # Commit times are the ingest counter: window == ID range.
        assert engine.time_index.docs_in_range(10, 19) == list(range(10, 20))

    def test_full_audit_clean(self, world):
        from repro.adversary.detection import full_engine_audit

        engine, _, _ = world
        reports = full_engine_audit(engine)
        assert all(r.ok for r in reports)

    def test_jump_indexes_were_exercised(self, world):
        engine, _, _ = world
        pointers = sum(j.pointers_set for j in engine._jumps.values())
        blocks = sum(pl.num_blocks for pl in engine._lists.values())
        assert blocks > len(engine._lists)  # multi-block lists exist
        assert pointers > 0                 # jump pointers were committed
