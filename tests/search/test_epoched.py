"""Integration tests for the epoch-adaptive search engine."""

import pytest

from repro.errors import WorkloadError
from repro.search.engine import EngineConfig
from repro.search.epoched import EpochedSearchEngine, EpochPolicy


def make_engine(docs_per_epoch=3, **policy_kwargs):
    return EpochedSearchEngine(
        EngineConfig(num_lists=16, branching=4, block_size=512),
        policy=EpochPolicy(docs_per_epoch=docs_per_epoch, **policy_kwargs),
    )


class TestEpochRolling:
    def test_auto_roll(self):
        engine = make_engine(docs_per_epoch=2)
        for i in range(5):
            engine.index_document(f"memo number {i} about audits")
        assert len(engine.epochs) == 3
        assert [e.doc_count for e in engine.epochs] == [2, 2, 1]

    def test_global_doc_ids_monotonic(self):
        engine = make_engine(docs_per_epoch=2)
        ids = [engine.index_document(f"doc {i}") for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_manual_roll(self):
        engine = make_engine(docs_per_epoch=100)
        engine.index_document("first epoch doc")
        assert engine.new_epoch() == 1
        engine.index_document("second epoch doc")
        assert engine.epochs[1].doc_count == 1


class TestCrossEpochQueries:
    def test_fanout_finds_docs_in_all_epochs(self):
        engine = make_engine(docs_per_epoch=2)
        for i in range(6):
            engine.index_document(f"imclone filing number{i}")
        hits = {r.doc_id for r in engine.search("imclone", top_k=10)}
        assert hits == set(range(6))

    def test_conjunctive_across_epochs(self):
        engine = make_engine(docs_per_epoch=2)
        engine.index_document("stewart waksal imclone memo")      # epoch 0
        engine.index_document("unrelated budget planning")        # epoch 0
        engine.index_document("stewart waksal trading summary")   # epoch 1
        hits = {r.doc_id for r in engine.search("+stewart +waksal")}
        assert hits == {0, 2}

    def test_time_range_touches_only_overlapping_epochs(self):
        engine = make_engine(docs_per_epoch=2)
        for i in range(6):
            engine.index_document(f"imclone doc{i}", commit_time=100 + i)
        hits = {r.doc_id for r in engine.search("imclone @102..103")}
        assert hits == {2, 3}
        # Epochs outside the window were not consulted.
        from repro.search.query import parse_query

        consulted = engine._epochs_for(parse_query("imclone @102..103"))
        assert [e.epoch_no for e in consulted] == [1]


class TestAdaptation:
    def test_jump_index_dropped_when_queries_are_short(self):
        engine = make_engine(
            docs_per_epoch=2, conjunctive_share_for_jump=0.5, min_terms_for_jump=4
        )
        engine.index_document("alpha beta gamma delta")
        engine.index_document("alpha beta epsilon")
        for _ in range(10):
            engine.search("alpha")  # 1-keyword workload
        engine.new_epoch()
        assert engine.epochs[0].uses_jump_index  # base config default
        assert not engine.epochs[1].uses_jump_index

    def test_jump_index_kept_when_conjunctive_dominates(self):
        engine = make_engine(
            docs_per_epoch=2, conjunctive_share_for_jump=0.5, min_terms_for_jump=3
        )
        engine.index_document("alpha beta gamma delta")
        for _ in range(10):
            engine.search("+alpha +beta +gamma")
        engine.new_epoch()
        assert engine.epochs[1].uses_jump_index

    def test_popular_terms_unmerged_next_epoch(self):
        engine = make_engine(docs_per_epoch=2, unmerged_popular_terms=4)
        engine.index_document("hotterm coldterm filler words")
        for _ in range(5):
            engine.search("hotterm")
        engine.new_epoch()
        new_engine = engine.epochs[1].engine
        from repro.core.merge import PopularUnmergedMerge

        assert isinstance(new_engine._merge, PopularUnmergedMerge)
        hot_id = new_engine.term_id("hotterm")
        assert hot_id in new_engine._merge.popular_terms


    def test_infeasible_branching_falls_back(self):
        """A B=32 policy on 512-byte blocks degrades to a feasible B."""
        engine = EpochedSearchEngine(
            EngineConfig(num_lists=8, branching=8, block_size=512),
            policy=EpochPolicy(
                docs_per_epoch=2,
                conjunctive_share_for_jump=0.0,
                min_terms_for_jump=1,
                branching=32,
            ),
        )
        engine.index_document("alpha beta gamma delta")
        engine.search("+alpha +beta +gamma")
        engine.new_epoch()
        new = engine.epochs[1]
        assert new.uses_jump_index
        assert new.engine.config.branching < 32
        # And ingest into the adapted epoch works.
        engine.index_document("alpha epsilon")
        assert {r.doc_id for r in engine.search("alpha")} == {0, 1}


    def test_first_epoch_uses_base_defaults(self):
        engine = make_engine()
        from repro.core.merge import UniformHashMerge

        assert isinstance(engine.epochs[0].engine._merge, UniformHashMerge)


class TestPolicyValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(WorkloadError):
            EpochPolicy(docs_per_epoch=0)
        with pytest.raises(WorkloadError):
            EpochPolicy(conjunctive_share_for_jump=1.5)


class TestIsolation:
    def test_epochs_share_one_worm_device(self):
        engine = make_engine(docs_per_epoch=1)
        engine.index_document("one")
        engine.index_document("two")
        files = engine.store.device.list_files()
        assert any(f.startswith("epoch0000/") for f in files)
        assert any(f.startswith("epoch0001/") for f in files)
