"""End-to-end: the epoch-adaptive engine on a drifting workload.

Feeds the :class:`~repro.workloads.drift.DriftingWorkload`'s epochs
through a real :class:`~repro.search.epoched.EpochedSearchEngine`:
documents ingested per epoch, queries observed, and the next epoch's
merge strategy learned from them — then verifies correctness across the
whole history (queries fan out over every epoch's index).
"""

import pytest

from repro.core.merge import PopularUnmergedMerge
from repro.search.engine import EngineConfig
from repro.search.epoched import EpochedSearchEngine, EpochPolicy
from repro.workloads.drift import DriftConfig, DriftingWorkload
from repro.workloads.vocabulary import Vocabulary

DOCS_PER_EPOCH = 30
VOCAB = 300


@pytest.fixture(scope="module")
def world():
    drift = DriftingWorkload(
        DriftConfig(
            vocabulary_size=VOCAB,
            num_epochs=3,
            queries_per_epoch=60,
            hot_pool_size=40,
            drift_stride=10,
            terms_per_query=2,
            seed=5,
        )
    )
    vocabulary = Vocabulary(VOCAB)
    engine = EpochedSearchEngine(
        EngineConfig(num_lists=16, branching=4, block_size=512),
        policy=EpochPolicy(docs_per_epoch=DOCS_PER_EPOCH, unmerged_popular_terms=6),
    )
    # Brute-force mirror: global doc id -> set of term words.
    mirror = {}
    doc_counter = 0
    for epoch in drift.epochs():
        # Each epoch ingests documents built from its own hot terms, so
        # the learned popular set actually matters for the next epoch.
        hot = epoch.qi.argsort()[::-1][:10]
        for i in range(DOCS_PER_EPOCH):
            words = sorted(
                {vocabulary.word(int(hot[j % len(hot)])) for j in range(i, i + 3)}
            )
            text = " ".join(words)
            doc_id = engine.index_document(text)
            assert doc_id == doc_counter
            mirror[doc_id] = set(words)
            doc_counter += 1
        # Observe this epoch's queries (drives next epoch's adaptation).
        for query in epoch.queries:
            words = vocabulary.words(query.term_ids)
            engine.search(" ".join(w for w in words if w))
        if epoch.epoch_no < 2:
            engine.new_epoch()
    return engine, mirror, vocabulary


class TestDriftIntegration:
    def test_epochs_were_created(self, world):
        engine, _, _ = world
        assert len(engine.epochs) >= 3

    def test_later_epochs_learned_popular_terms(self, world):
        engine, _, _ = world
        adapted = [
            e for e in engine.epochs[1:]
            if isinstance(e.engine._merge, PopularUnmergedMerge)
        ]
        assert adapted, "no epoch adapted its merge strategy"

    def test_queries_correct_across_all_epochs(self, world):
        engine, mirror, vocabulary = world
        # Disjunctive: every term that exists somewhere must surface all
        # its documents regardless of which epoch holds them.
        terms = {w for words in mirror.values() for w in words}
        for term in sorted(terms)[:15]:
            expected = {d for d, words in mirror.items() if term in words}
            got = {r.doc_id for r in engine.search(term, top_k=len(mirror))}
            assert got == expected, term

    def test_conjunctive_across_epochs(self, world):
        engine, mirror, _ = world
        # Pick a word pair that co-occurs somewhere.
        for words in mirror.values():
            pair = sorted(words)[:2]
            if len(pair) == 2:
                break
        expected = {
            d for d, ws in mirror.items() if pair[0] in ws and pair[1] in ws
        }
        got = {
            r.doc_id
            for r in engine.search(f"+{pair[0]} +{pair[1]}", top_k=len(mirror))
        }
        assert got == expected

    def test_audits_clean_per_epoch(self, world):
        from repro.adversary.detection import full_engine_audit

        engine, _, _ = world
        for epoch in engine.epochs:
            if epoch.doc_count:
                reports = full_engine_audit(epoch.engine)
                assert all(r.ok for r in reports)
