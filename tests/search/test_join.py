"""Unit + property tests for the zigzag join machinery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bplus_tree import BPlusTree
from repro.core.block_jump_index import BlockJumpIndex
from repro.errors import QueryError
from repro.search.join import (
    MemoryCursor,
    MergedListCursor,
    RawMergedCursor,
    TreeCursor,
    conjunctive_join,
    paper_conjunctive_join,
    sequential_conjunctive,
    zigzag,
)
from repro.worm.storage import CachedWormStore


class TestMemoryCursor:
    def test_basic_stepping(self):
        cur = MemoryCursor([1, 5, 9])
        assert cur.doc() == 1
        assert cur.seek_geq(5) == 5
        assert cur.seek_geq(6) == 9
        assert cur.seek_geq(10) is None
        assert cur.blocks_read() == 0
        assert cur.estimated_length() == 3

    def test_empty(self):
        assert MemoryCursor([]).doc() is None


class TestZigzag:
    def test_intersection(self):
        a = MemoryCursor([1, 3, 5, 7, 9])
        b = MemoryCursor([2, 3, 7, 8])
        assert zigzag(a, b) == [3, 7]

    def test_disjoint(self):
        assert zigzag(MemoryCursor([1, 2]), MemoryCursor([3, 4])) == []

    def test_identical(self):
        assert zigzag(MemoryCursor([1, 2]), MemoryCursor([1, 2])) == [1, 2]

    @given(
        a=st.sets(st.integers(min_value=0, max_value=200), max_size=80),
        b=st.sets(st.integers(min_value=0, max_value=200), max_size=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_set_intersection(self, a, b):
        got = zigzag(MemoryCursor(sorted(a)), MemoryCursor(sorted(b)))
        assert got == sorted(a & b)


class TestTreeCursor:
    def test_stepping(self):
        tree = BPlusTree(fanout=4)
        for k in [2, 5, 9, 14]:
            tree.insert(k)
        cur = TreeCursor(tree)
        assert cur.doc() == 2
        assert cur.seek_geq(6) == 9
        assert cur.seek_geq(3) == 9  # never moves backwards
        assert cur.seek_geq(15) is None
        assert cur.blocks_read() > 0


def build_bundle(docs_terms, branching=4):
    """Small merged index: one physical list, optional jump index."""
    store = CachedWormStore(None, block_size=256)
    bji = BlockJumpIndex.create(store, "pl", branching=branching, max_doc_bits=16)
    for doc_id, terms in docs_terms:
        for t in sorted(terms):
            bji.insert(doc_id, term_code=t)
    return bji


class TestMergedListCursor:
    def test_filtered_join_against_brute_force(self):
        random.seed(4)
        docs = []
        docsets = {}
        for doc_id in range(400):
            terms = random.sample(range(6), random.randint(1, 4))
            docs.append((doc_id, terms))
            for t in terms:
                docsets.setdefault(t, set()).add(doc_id)
        bji = build_bundle(docs)
        for t1, t2 in [(0, 1), (2, 3), (4, 5), (0, 5)]:
            cursors = [
                MergedListCursor(bji.posting_list, term_code=t, jump_index=bji)
                for t in (t1, t2)
            ]
            got, blocks = conjunctive_join(cursors)
            assert got == sorted(docsets[t1] & docsets[t2])
            assert blocks > 0

    def test_sequential_fallback_without_jump_index(self):
        docs = [(i, [i % 3]) for i in range(100)]
        bji = build_bundle(docs)
        cur = MergedListCursor(bji.posting_list, term_code=0)
        assert cur.seek_geq(50) == 51
        assert cur.doc() == 51

    def test_single_cursor_join_lists_all(self):
        docs = [(i, [0]) for i in range(10)]
        bji = build_bundle(docs)
        cur = MergedListCursor(bji.posting_list, term_code=0, jump_index=bji)
        got, _ = conjunctive_join([cur])
        assert got == list(range(10))

    def test_empty_join_rejected(self):
        with pytest.raises(QueryError):
            conjunctive_join([])


class TestPaperSemantics:
    def _world(self, seed=9, num_docs=300, num_terms=8):
        random.seed(seed)
        docs = []
        docsets = {}
        for doc_id in range(num_docs):
            terms = random.sample(range(num_terms), random.randint(1, 4))
            docs.append((doc_id, terms))
            for t in terms:
                docsets.setdefault(t, set()).add(doc_id)
        return docs, docsets

    def test_raw_join_matches_brute_force(self):
        docs, docsets = self._world()
        bji = build_bundle(docs)
        for terms in [(0, 1), (1, 2, 3), (4, 5, 6, 7), (0, 2, 4)]:
            cursors = [
                RawMergedCursor(bji.posting_list, [t], jump_index=bji)
                for t in terms
            ]
            got, _ = paper_conjunctive_join(cursors)
            expect = sorted(set.intersection(*[docsets.get(t, set()) for t in terms]))
            assert got == expect

    def test_shared_list_multi_code_cursor(self):
        """Terms hashing to the same list share one cursor with both codes."""
        docs, docsets = self._world(seed=2)
        bji = build_bundle(docs)
        cursor = RawMergedCursor(bji.posting_list, [0, 1], jump_index=bji)
        got, _ = paper_conjunctive_join([cursor])
        assert got == sorted(docsets[0] & docsets[1])

    def test_doc_has_codes_across_block_boundary(self):
        """A document's postings may straddle blocks; all must be seen."""
        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=2, max_doc_bits=16)
        p = bji.posting_list.entries_per_block
        # Fill so that doc 100's two postings straddle a block boundary.
        for i in range(p - 1):
            bji.insert(i, term_code=0)
        bji.insert(100, term_code=1)
        bji.insert(100, term_code=2)
        cur = RawMergedCursor(bji.posting_list, [1, 2], jump_index=bji)
        assert cur.seek_geq(100) == 100
        assert cur.doc_has_codes(100)

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            paper_conjunctive_join([])

    @given(
        doc_terms=st.lists(
            st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
            min_size=1,
            max_size=120,
        ),
        query=st.sets(
            st.integers(min_value=0, max_value=7), min_size=2, max_size=4
        ),
        branching=st.sampled_from([2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute_force(self, doc_terms, query, branching):
        """Both join semantics agree with set intersection, always."""
        docs = [(doc_id, sorted(terms)) for doc_id, terms in enumerate(doc_terms)]
        docsets = {}
        for doc_id, terms in docs:
            for t in terms:
                docsets.setdefault(t, set()).add(doc_id)
        bji = build_bundle(docs, branching=branching)
        terms = sorted(query)
        expected = sorted(
            set.intersection(*[docsets.get(t, set()) for t in terms])
        )
        raw = RawMergedCursor(bji.posting_list, terms, jump_index=bji)
        got_raw, _ = paper_conjunctive_join([raw])
        filtered = [
            MergedListCursor(bji.posting_list, term_code=t, jump_index=bji)
            for t in terms
        ]
        got_filtered, _ = conjunctive_join(filtered)
        assert got_raw == expected
        assert got_filtered == expected


class TestSequentialConjunctive:
    def test_counts_every_block(self):
        docs = [(i, [i % 2]) for i in range(300)]
        bji = build_bundle(docs)
        got, blocks = sequential_conjunctive(
            [bji.posting_list, bji.posting_list], [0, 1]
        )
        assert got == []  # no doc carries both parities
        assert blocks == 2 * bji.posting_list.num_blocks

    def test_unfiltered_scan(self):
        docs = [(i, [0, 1]) for i in range(20)]
        bji = build_bundle(docs)
        got, _ = sequential_conjunctive([bji.posting_list], [None])
        assert got == list(range(20))

    def test_misaligned_args_rejected(self):
        with pytest.raises(QueryError):
            sequential_conjunctive([], [0])
        with pytest.raises(QueryError):
            sequential_conjunctive([], [])
