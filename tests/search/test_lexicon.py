"""PrefixHashLexicon: hash tier + hashed-prefix ordered tier.

The ordered tier must agree with a plain sorted-list reference on every
probe — the hashed prefix table is an accelerator, never an
approximation — and the hash tier must preserve the engine's dense
first-appearance ID contract.
"""

from bisect import bisect_left

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.search.lexicon import PrefixHashLexicon

terms_strategy = st.lists(
    st.text(alphabet="abcz", min_size=1, max_size=6), unique=True, max_size=60
)
probe_strategy = st.text(alphabet="abcz", max_size=6)


def reference_geq(terms, key):
    ordered = sorted(terms)
    index = bisect_left(ordered, key)
    return ordered[index] if index < len(ordered) else None


class TestHashTier:
    def test_dense_first_appearance_ids(self):
        lexicon = PrefixHashLexicon()
        assert lexicon.add("gamma") == 0
        assert lexicon.add("alpha") == 1
        assert lexicon.add("beta") == 2
        assert lexicon.lookup("alpha") == 1
        assert lexicon.lookup("missing") is None
        assert lexicon.term(0) == "gamma"
        assert len(lexicon) == 3

    def test_prefix_len_validation(self):
        import pytest

        with pytest.raises(ValueError):
            PrefixHashLexicon(prefix_len=0)


class TestOrderedTier:
    @given(terms=terms_strategy, key=probe_strategy)
    @settings(max_examples=150, deadline=None)
    def test_property_find_geq_matches_sorted_reference(self, terms, key):
        lexicon = PrefixHashLexicon(prefix_len=2)
        for term in terms:
            lexicon.add(term)
        assert lexicon.find_geq(key) == reference_geq(terms, key)

    @given(terms=terms_strategy, prefix=probe_strategy)
    @settings(max_examples=150, deadline=None)
    def test_property_terms_with_prefix_matches_reference(self, terms, prefix):
        lexicon = PrefixHashLexicon(prefix_len=2)
        for term in terms:
            lexicon.add(term)
        expected = sorted(t for t in terms if t.startswith(prefix))
        assert lexicon.terms_with_prefix(prefix) == expected
        limit = 3
        assert lexicon.terms_with_prefix(prefix, limit=limit) == expected[:limit]

    @given(terms=terms_strategy)
    @settings(max_examples=80, deadline=None)
    def test_property_iter_ordered_is_sorted(self, terms):
        lexicon = PrefixHashLexicon(prefix_len=2)
        for term in terms:
            lexicon.add(term)
        assert list(lexicon.iter_ordered()) == sorted(terms)

    def test_rebuild_is_lazy_and_batched(self):
        lexicon = PrefixHashLexicon()
        for term in ("delta", "alpha", "charlie"):
            lexicon.add(term)
        assert lexicon.rebuilds == 0
        lexicon.find_geq("b")
        assert lexicon.rebuilds == 1
        # Ordered probes without intervening appends reuse the layer.
        lexicon.terms_with_prefix("a")
        lexicon.find_geq("z")
        assert lexicon.rebuilds == 1
        lexicon.add("bravo")
        lexicon.find_geq("b")
        assert lexicon.rebuilds == 2

    def test_probe_longer_and_shorter_than_prefix_len(self):
        lexicon = PrefixHashLexicon(prefix_len=4)
        for term in ("retain", "retention", "retrieval", "zebra"):
            lexicon.add(term)
        assert lexicon.terms_with_prefix("ret") == [
            "retain",
            "retention",
            "retrieval",
        ]
        assert lexicon.terms_with_prefix("retention") == ["retention"]
        assert lexicon.find_geq("reta") == "retain"
        assert lexicon.find_geq("zz") is None


class TestEngineIntegration:
    def build(self):
        engine = TrustworthySearchEngine(
            EngineConfig(num_lists=8, block_size=4096, branching=None)
        )
        engine.index_document("retention policy for retained records")
        engine.index_document("retrieval of compliant records")
        return engine

    def test_terms_with_prefix(self):
        engine = self.build()
        assert engine.terms_with_prefix("ret") == [
            "retained",
            "retention",
            "retrieval",
        ]
        assert engine.terms_with_prefix("ret", limit=1) == ["retained"]
        assert engine.terms_with_prefix("zzz") == []

    def test_prefix_canonicalized_like_terms(self):
        engine = self.build()
        # lexicon_key truncation applies to prefixes exactly as to terms,
        # so an over-long probe degrades to its stored canonical form
        # instead of silently matching nothing.
        long_term = "r" * 400
        engine.index_term_counts({long_term: 1})
        assert engine.terms_with_prefix(long_term) == engine.terms_with_prefix(
            "r" * 128
        )

    def test_lexicon_survives_restart(self):
        engine = self.build()
        reopened = TrustworthySearchEngine(engine.config, store=engine.store)
        assert reopened.terms_with_prefix("ret") == engine.terms_with_prefix("ret")
        assert reopened.vocabulary_size == engine.vocabulary_size
