"""Regression tests for the WORM lexicon log's term encoding.

The historical write path appended ``term.encode("utf-8")[:128]`` to the
lexicon log: the byte-level slice could split a multi-byte UTF-8
character, so reopening an archive crashed decoding the log, and any
term longer than 128 bytes restored as a *different* string than the one
the live engine indexed — silently desynchronizing the term→id→
posting-list mapping across restarts.  The fix canonicalizes terms via
:func:`repro.search.engine.lexicon_key` (character-boundary truncation)
and keeps the in-memory and on-WORM forms identical.
"""

import pytest

from repro.errors import WorkloadError
from repro.search.engine import (
    MAX_LEXICON_TERM_BYTES,
    EngineConfig,
    TrustworthySearchEngine,
    lexicon_key,
)

CONFIG = EngineConfig(num_lists=32, branching=4, block_size=512)

# 3 bytes per character in UTF-8; 128 is not a multiple of 3, so a byte
# slice at 128 is guaranteed to land inside a character.
CJK_TERM = "日本語" * 20
# 4 bytes per character; 128 % 4 == 0, so pad by one letter to force a
# mid-character cut.
EMOJI_TERM = "x" + "\U0001f512" * 40
LONG_ASCII = "a" * 300


def vocabulary(engine):
    return [engine.term_text(i) for i in range(engine.vocabulary_size)]


def reopen(engine):
    return TrustworthySearchEngine(CONFIG, store=engine.store)


class TestLexiconKey:
    def test_short_terms_unchanged(self):
        assert lexicon_key("revenue") == "revenue"
        assert lexicon_key("日本") == "日本"

    def test_cut_lands_on_character_boundary(self):
        for term in (CJK_TERM, EMOJI_TERM, LONG_ASCII):
            key = lexicon_key(term)
            encoded = key.encode("utf-8")
            assert len(encoded) <= MAX_LEXICON_TERM_BYTES
            # Round-trips: the cut never splits a character.
            assert encoded.decode("utf-8") == key
            assert term.startswith(key)

    def test_ascii_cut_is_exactly_the_budget(self):
        assert lexicon_key(LONG_ASCII) == "a" * MAX_LEXICON_TERM_BYTES


class TestRestartRoundTrip:
    def test_multibyte_terms_survive_restart(self):
        engine = TrustworthySearchEngine(CONFIG)
        doc = engine.index_term_counts({CJK_TERM: 2, EMOJI_TERM: 1, "memo": 1})
        original_ids = {
            t: engine.term_id(t) for t in (CJK_TERM, EMOJI_TERM, "memo")
        }
        # Pre-fix this decode crashed: the lexicon log held a torn
        # multi-byte character.
        reopened = reopen(engine)
        assert reopened.vocabulary_size == engine.vocabulary_size
        for term, term_id in original_ids.items():
            assert reopened.term_id(term) == term_id

    def test_long_term_keeps_its_posting_list(self):
        engine = TrustworthySearchEngine(CONFIG)
        engine.index_term_counts({LONG_ASCII: 1, "anchor": 1})
        engine.index_term_counts({"anchor": 1})
        reopened = reopen(engine)
        # Pre-fix the restored string was the raw 128-byte slice while
        # the live engine had indexed the full 300-char term, so the
        # same query resolved to different ids before and after restart.
        assert reopened.term_id(LONG_ASCII) == engine.term_id(LONG_ASCII)
        results = reopened.conjunctive_doc_ids([LONG_ASCII])[0]
        assert results == engine.conjunctive_doc_ids([LONG_ASCII])[0] == [0]

    def test_in_memory_and_worm_forms_identical(self):
        engine = TrustworthySearchEngine(CONFIG)
        engine.index_term_counts({CJK_TERM: 1, LONG_ASCII: 1})
        reopened = reopen(engine)
        assert vocabulary(reopened) == vocabulary(engine)

    def test_repeated_restarts_are_stable(self):
        engine = TrustworthySearchEngine(CONFIG)
        engine.index_term_counts({CJK_TERM: 1})
        once = reopen(engine)
        twice = reopen(once)
        assert vocabulary(twice) == vocabulary(engine)
        assert twice.vocabulary_size == 1

    def test_newline_terms_are_rejected(self):
        engine = TrustworthySearchEngine(CONFIG)
        with pytest.raises(WorkloadError):
            engine.index_term_counts({"bad\nterm": 1})
