"""Merge-assignment stability under lexicon growth (property tests).

``TrustworthySearchEngine._list_id_for`` re-derives a *larger*
:class:`~repro.core.merge.TermAssignment` whenever the lexicon outgrows
the current one, relying on the :class:`~repro.core.merge.MergeStrategy`
contract that ``assign(n')`` maps terms ``0 .. n-1`` exactly as
``assign(n)`` did — committed postings cannot move between physical
lists.  The engine comment claims this invariant; these tests verify it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import UniformHashMerge
from repro.search.engine import EngineConfig, TrustworthySearchEngine


class TestStrategyPrefixStability:
    @given(
        num_lists=st.integers(min_value=1, max_value=512),
        salt=st.integers(min_value=0, max_value=10),
        sizes=st.lists(
            st.integers(min_value=1, max_value=5000),
            min_size=2,
            max_size=5,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_hash_assignments_are_prefix_stable(
        self, num_lists, salt, sizes
    ):
        """assign(n') agrees with assign(n) on every term < n."""
        strategy = UniformHashMerge(num_lists, salt=salt)
        sizes = sorted(set(sizes))
        assignments = [strategy.assign(n) for n in sizes]
        for smaller, larger in zip(assignments, assignments[1:]):
            assert (
                larger.list_ids[: smaller.num_terms] == smaller.list_ids
            ).all()

    @given(
        num_lists=st.integers(min_value=1, max_value=64),
        salt=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_assignment_is_deterministic(self, num_lists, salt):
        a = UniformHashMerge(num_lists, salt=salt).assign(777)
        b = UniformHashMerge(num_lists, salt=salt).assign(777)
        assert (a.list_ids == b.list_ids).all()


class TestEngineListStability:
    @given(
        growth_points=st.lists(
            st.integers(min_value=0, max_value=6000),
            min_size=4,
            max_size=12,
            unique=True,
        ),
        num_lists=st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=30, deadline=None)
    def test_assigned_terms_keep_their_physical_list(
        self, growth_points, num_lists
    ):
        """Every already-assigned term survives a universe re-derivation.

        The engine starts with a 1024-term universe and doubles past the
        highest requested term ID; asking for term IDs in increasing
        order forces those re-derivations, and every earlier term's
        physical list must come out unchanged each time.
        """
        engine = TrustworthySearchEngine(EngineConfig(num_lists=num_lists))
        recorded = {}
        for term_id in sorted(growth_points):
            for known, expected in recorded.items():
                assert engine._list_id_for(known) == expected, (
                    f"term {known} moved from list {expected} after the "
                    f"universe grew past term {term_id}"
                )
            recorded[term_id] = engine._list_id_for(term_id)
        # One final sweep after the largest growth event.
        for known, expected in recorded.items():
            assert engine._list_id_for(known) == expected

    def test_growth_across_restart_is_stable(self):
        """Lists assigned before a restart survive growth after it."""
        config = EngineConfig(num_lists=16, branching=None, block_size=512)
        engine = TrustworthySearchEngine(config)
        engine.index_term_counts({f"t{i:05d}": 1 for i in range(1500)})
        before = {
            term_id: engine._list_id_for(term_id) for term_id in range(1500)
        }
        reopened = TrustworthySearchEngine(config, store=engine.store)
        # Grow the reopened lexicon past the next re-derivation point.
        reopened.index_term_counts({f"u{i:05d}": 1 for i in range(2000)})
        for term_id, expected in before.items():
            assert reopened._list_id_for(term_id) == expected
