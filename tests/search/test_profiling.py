"""Unit tests for query-cost profiling."""

import pytest

from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.search.profiling import profile_query, recommend_configuration


@pytest.fixture()
def engine():
    engine = TrustworthySearchEngine(
        EngineConfig(num_lists=8, branching=4, block_size=512)
    )
    for i in range(40):
        terms = ["common"]
        if i % 2 == 0:
            terms.append("even")
        if i % 5 == 0:
            terms.append("fifth")
        engine.index_document(" ".join(terms) + f" filler{i}")
    return engine


class TestDisjunctiveProfile:
    def test_counts_and_matches(self, engine):
        profile = profile_query(engine, "even fifth")
        assert profile.mode == "disjunctive"
        assert profile.matches == 20 + 8 - 4  # union of evens and fifths
        assert profile.blocks_read >= 1
        assert profile.entries_scanned > 0
        assert not profile.used_jump_index

    def test_scans_whole_lists(self, engine):
        profile = profile_query(engine, "common")
        total_blocks = sum(profile.per_list_blocks.values())
        assert profile.blocks_read == total_blocks

    def test_unknown_term_costs_nothing(self, engine):
        profile = profile_query(engine, "unknownterm")
        assert profile.matches == 0
        assert profile.blocks_read == 0

    def test_summary_readable(self, engine):
        text = profile_query(engine, "common even").summary()
        assert "disjunctive" in text
        assert "matches" in text


class TestConjunctiveProfile:
    def test_counts_and_matches(self, engine):
        profile = profile_query(engine, "+even +fifth")
        assert profile.mode == "conjunctive"
        assert profile.matches == 4  # multiples of 10
        assert profile.used_jump_index
        assert profile.blocks_read >= 1

    def test_absent_term_short_circuits(self, engine):
        profile = profile_query(engine, "+common +unknownterm")
        assert profile.matches == 0
        assert profile.blocks_read == 0

    def test_agrees_with_engine_answers(self, engine):
        profile = profile_query(engine, "+common +even")
        docs, _ = engine.conjunctive_doc_ids(["common", "even"])
        assert profile.matches == len(docs)

    def test_profiling_does_not_mutate_state(self, engine):
        before = len(engine.documents)
        profile_query(engine, "+even +fifth")
        profile_query(engine, "common")
        assert len(engine.documents) == before
        assert engine.search("common")  # engine still healthy


class TestRecommendation:
    def test_short_query_mix(self, engine):
        profiles = [profile_query(engine, "common even") for _ in range(3)]
        advice = recommend_configuration(profiles)
        assert "without a jump index" in advice

    def test_many_keyword_mix(self, engine):
        profiles = [
            profile_query(engine, "+common +even +fifth +filler0")
            for _ in range(3)
        ]
        advice = recommend_configuration(profiles)
        assert "B=32 jump index" in advice

    def test_empty(self):
        assert "no profiles" in recommend_configuration([])
