"""Unit tests for query parsing."""

import pytest

from repro.errors import QueryError
from repro.search.query import Query, QueryMode, parse_query


class TestParsing:
    def test_plain_is_disjunctive(self):
        q = parse_query("stewart waksal imclone")
        assert q.mode is QueryMode.ANY
        assert q.terms == ("stewart", "waksal", "imclone")

    def test_plus_prefix_is_conjunctive(self):
        q = parse_query("+stewart +waksal")
        assert q.mode is QueryMode.ALL
        assert q.terms == ("stewart", "waksal")

    def test_mixed_prefixes_rejected(self):
        with pytest.raises(QueryError):
            parse_query("+stewart waksal")

    def test_time_range_suffix(self):
        q = parse_query("+stewart +waksal @1004572800..1009843200")
        assert q.time_range == (1004572800, 1009843200)
        assert q.mode is QueryMode.ALL

    def test_bad_time_range_rejected(self):
        with pytest.raises(QueryError):
            parse_query("stewart @abc..def")
        with pytest.raises(QueryError):
            parse_query("stewart @12345")

    def test_duplicates_collapsed(self):
        q = parse_query("memo memo memo")
        assert q.terms == ("memo",)

    def test_stopword_only_query_rejected(self):
        with pytest.raises(QueryError):
            parse_query("the and of")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_analysis_applied(self):
        q = parse_query("The QUARTERLY Report!")
        assert q.terms == ("quarterly", "report")


class TestQueryModel:
    def test_num_terms(self):
        assert Query(terms=("a", "b")).num_terms == 2

    def test_empty_terms_rejected(self):
        with pytest.raises(QueryError):
            Query(terms=())

    def test_inverted_time_range_rejected(self):
        with pytest.raises(QueryError):
            Query(terms=("a",), time_range=(10, 5))
