"""Unit tests for the BM25 and cosine scorers."""

import pytest

from repro.search.ranking import BM25Scorer, CollectionStats, CosineScorer


@pytest.fixture()
def stats():
    stats = CollectionStats()
    stats.add_document(0, {1: 3, 2: 1})      # short doc about term 1
    stats.add_document(1, {1: 1, 3: 5})      # doc about term 3
    stats.add_document(2, {2: 2, 3: 1, 4: 1})
    return stats


class TestCollectionStats:
    def test_document_frequencies(self, stats):
        assert stats.df[1] == 2
        assert stats.df[4] == 1
        assert stats.num_docs == 3

    def test_lengths(self, stats):
        assert stats.doc_length(0) == 4
        assert stats.doc_length(1) == 6
        assert stats.avg_doc_length == pytest.approx((4 + 6 + 4) / 3)

    def test_unknown_doc_length_zero(self, stats):
        assert stats.doc_length(99) == 0

    def test_empty_stats(self):
        empty = CollectionStats()
        assert empty.avg_doc_length == 1.0
        assert empty.num_docs == 0

    def test_readd_same_document_is_idempotent(self, stats):
        """Regression: re-adding a known doc_id must not double count."""
        before = (stats.num_docs, stats.total_length, dict(stats.df))
        stats.add_document(1, {1: 1, 3: 5})
        assert (stats.num_docs, stats.total_length, dict(stats.df)) == before
        assert stats.avg_doc_length == pytest.approx((4 + 6 + 4) / 3)

    def test_readd_replaces_previous_contributions(self, stats):
        """A changed re-index replaces, not accumulates, the old counts."""
        stats.add_document(1, {2: 2})
        assert stats.num_docs == 3
        assert stats.doc_length(1) == 2
        assert stats.total_length == 4 + 2 + 4
        # Terms 1 and 3 lost doc 1's contribution; term 2 gained it.
        assert stats.df[1] == 1
        assert stats.df[2] == 3
        assert stats.df.get(3, 0) == 1

    def test_readd_drops_df_to_zero_cleanly(self):
        stats = CollectionStats()
        stats.add_document(0, {7: 2})
        stats.add_document(0, {8: 1})
        assert 7 not in stats.df
        assert stats.df[8] == 1
        assert stats.num_docs == 1
        assert stats.total_length == 1


class TestBM25:
    def test_rarer_terms_score_higher(self, stats):
        scorer = BM25Scorer(stats)
        assert scorer.idf(4) > scorer.idf(1)  # df 1 vs df 2

    def test_more_occurrences_score_higher(self, stats):
        scorer = BM25Scorer(stats)
        low = scorer.score(0, {1: 1})
        high = scorer.score(0, {1: 3})
        assert high > low

    def test_absent_terms_contribute_nothing(self, stats):
        scorer = BM25Scorer(stats)
        assert scorer.score(0, {99: 0}) == 0.0
        assert scorer.score(0, {}) == 0.0

    def test_tf_saturation(self, stats):
        """BM25's hallmark: tf gains diminish."""
        scorer = BM25Scorer(stats)
        gain_early = scorer.score(0, {1: 2}) - scorer.score(0, {1: 1})
        gain_late = scorer.score(0, {1: 10}) - scorer.score(0, {1: 9})
        assert gain_early > gain_late

    def test_length_normalization(self, stats):
        """Same tf scores higher in a shorter document."""
        scorer = BM25Scorer(stats)
        assert scorer.score(0, {1: 1}) > scorer.score(1, {1: 1})

    def test_idf_floor(self):
        stats = CollectionStats()
        for doc_id in range(5):
            stats.add_document(doc_id, {7: 1})
        assert BM25Scorer(stats).idf(7) >= 0.0


class TestCosine:
    def test_log_tf_weighting(self, stats):
        scorer = CosineScorer(stats)
        assert scorer.score(0, {1: 3}) > scorer.score(0, {1: 1})

    def test_unseen_term_idf_zero(self, stats):
        assert CosineScorer(stats).idf(99) == 0.0

    def test_length_normalization(self, stats):
        scorer = CosineScorer(stats)
        assert scorer.score(0, {1: 1}) > scorer.score(1, {1: 1})

    def test_empty_query_scores_zero(self, stats):
        assert CosineScorer(stats).score(0, {}) == 0.0
