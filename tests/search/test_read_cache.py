"""Unit tests for the read-path cache hierarchy and eviction policies."""

import pytest

from repro.observability import QueryTrace, export_read_cache
from repro.observability.metrics import MetricsRegistry
from repro.search.engine import EngineConfig
from repro.search.readcache import (
    DecodedBlockCache,
    JumpMemo,
    QueryResultCache,
    ReadCache,
)
from repro.errors import WorkloadError
from repro.worm.cache import (
    READ_CACHE_POLICIES,
    LRUPolicy,
    SegmentedLRUPolicy,
    TwoQPolicy,
    make_policy,
)
from tests.helpers import DEFAULT_CORPUS, SMALL_CONFIG, build_engine

ALL_POLICIES = sorted(READ_CACHE_POLICIES)


def cached_config(policy="lru", **kwargs):
    from dataclasses import replace

    return replace(SMALL_CONFIG, read_cache=True, cache_policy=policy, **kwargs)


# ----------------------------------------------------------------------
# eviction policies
# ----------------------------------------------------------------------
class TestPolicies:
    def test_factory_knows_all_policies(self):
        for name in ALL_POLICIES:
            assert make_policy(name).name == name

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_policy("arc")

    def test_lru_evicts_least_recent(self):
        p = LRUPolicy()
        for key in "abc":
            p.on_insert(key)
        p.on_hit("a")
        assert p.victim() == "b"
        p.discard("b")
        assert p.victim() == "c"
        assert len(p) == 2

    def test_2q_scan_resistance(self):
        """One-touch scan keys are evicted before twice-touched keys."""
        p = TwoQPolicy()
        p.on_insert("hot")
        p.on_hit("hot")  # promoted to Am
        for key in ("s1", "s2", "s3"):
            p.on_insert(key)  # scan traffic, stays in A1in
        assert p.victim() == "s1"  # FIFO probation head, not "hot"
        p.discard("s1")

    def test_2q_ghost_promotes_on_readmission(self):
        p = TwoQPolicy()
        for key in ("a", "b", "c", "d"):
            p.on_insert(key)
        victim = p.victim()  # goes to the ghost queue
        p.discard(victim)
        p.on_insert(victim)  # readmission: straight to Am
        # A fresh one-touch key is now a better victim than the ghost hit.
        p.on_insert("fresh")
        assert p.victim() != victim

    def test_slru_protects_twice_touched(self):
        p = SegmentedLRUPolicy()
        p.on_insert("hot")
        p.on_hit("hot")  # promoted to protected
        for key in ("s1", "s2", "s3"):
            p.on_insert(key)
        assert p.victim() == "s1"
        assert len(p) == 4

    def test_slru_demotes_protected_overflow(self):
        p = SegmentedLRUPolicy(protected_fraction=0.5)
        for key in ("a", "b", "c", "d"):
            p.on_insert(key)
            p.on_hit(key)  # everything tries to get protected
        # Protected is capped, so some keys were demoted back; the policy
        # still tracks all four and can nominate a victim.
        assert len(p) == 4
        assert p.victim() in ("a", "b", "c", "d")

    def test_policy_param_validation(self):
        with pytest.raises(ValueError):
            TwoQPolicy(a1_fraction=1.5)
        with pytest.raises(ValueError):
            SegmentedLRUPolicy(protected_fraction=0.0)


# ----------------------------------------------------------------------
# tier 1: decoded blocks
# ----------------------------------------------------------------------
class TestDecodedBlockCache:
    def test_hit_miss_and_invalidate(self):
        cache = DecodedBlockCache(capacity_bytes=1 << 20)
        assert cache.get("pl", 0) is None
        cache.put("pl", 0, ["entries"])
        assert cache.get("pl", 0) == ["entries"]
        cache.invalidate("pl", 0)
        assert cache.get("pl", 0) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.invalidations == 1

    def test_byte_budget_evicts(self):
        # Each put weighs 128 + 64*10 = 768 bytes; cap fits two blocks.
        cache = DecodedBlockCache(capacity_bytes=1600)
        for block_no in range(4):
            cache.put("pl", block_no, list(range(10)))
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        assert cache.resident_bytes <= 1600

    def test_oversized_block_not_cached(self):
        cache = DecodedBlockCache(capacity_bytes=256)
        cache.put("pl", 0, list(range(100)))
        assert len(cache) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DecodedBlockCache(capacity_bytes=0)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_all_policies_work(self, policy):
        cache = DecodedBlockCache(policy=policy, capacity_bytes=2048)
        for block_no in range(8):
            cache.put("pl", block_no, list(range(5)))
            cache.get("pl", block_no)
        assert len(cache) >= 1
        assert cache.resident_bytes <= 2048


# ----------------------------------------------------------------------
# tier 2: query results
# ----------------------------------------------------------------------
class TestQueryResultCache:
    def test_fingerprint_mismatch_invalidates_exactly(self):
        cache = QueryResultCache()
        cache.put("q1", (5,), {"r": 1})
        cache.put("q2", (9,), {"r": 2})
        # q1's dependency grew; q2's did not.
        assert cache.get("q1", (6,)) is None
        assert cache.get("q2", (9,)) == {"r": 2}
        assert cache.stats.invalidations == 1

    def test_entry_bound_evicts(self):
        cache = QueryResultCache(max_entries=2)
        for i in range(4):
            cache.put(f"q{i}", (), i)
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_put_refreshes_existing_key(self):
        cache = QueryResultCache()
        cache.put("q", (1,), "old")
        cache.put("q", (2,), "new")
        assert len(cache) == 1
        assert cache.get("q", (2,)) == "new"


# ----------------------------------------------------------------------
# tier 3: jump memo
# ----------------------------------------------------------------------
class TestJumpMemo:
    def test_nb_and_edge_memo(self):
        memo = JumpMemo()
        assert memo.nb(0) is None
        memo.put_nb(0, 41)
        assert memo.nb(0) == 41
        assert not memo.edge_verified(0, 3, 7)
        memo.record_edge(0, 3, 7)
        assert memo.edge_verified(0, 3, 7)
        assert memo.stats.hits == 2
        assert memo.stats.misses == 2


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_config_validates_policy_and_budget(self):
        with pytest.raises(WorkloadError, match="cache policy"):
            EngineConfig(cache_policy="arc")
        with pytest.raises(WorkloadError, match="read_cache_mb"):
            EngineConfig(read_cache_mb=-1)

    def test_cache_off_by_default(self):
        engine = build_engine()
        assert engine.read_cache is None
        assert engine.read_cache_stats() is None

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_repeated_query_hits_result_cache(self, policy):
        engine = build_engine(config=cached_config(policy))
        first = engine.search("+imclone +stewart")
        second = engine.search("+imclone +stewart")
        assert [(r.doc_id, r.score) for r in first] == [
            (r.doc_id, r.score) for r in second
        ]
        stats = engine.read_cache_stats()
        assert stats["results"]["hits"] == 1

    def test_append_invalidates_only_touched_queries(self):
        engine = build_engine(config=cached_config())

        # Invalidation is exact at *physical list* granularity (terms
        # share merged lists), so pick an untouched term that provably
        # lives on a different list than the appended term.
        def lid(term):
            return engine._list_id_for(engine.term_id(term))

        untouched = next(
            t
            for t in ("finance", "quarterly", "revenue", "meeting")
            if lid(t) != lid("imclone")
        )
        engine.search("imclone")   # caches the imclone query
        engine.search(untouched)   # caches the untouched query
        engine.index_term_counts({"imclone": 1})  # appends to one list
        engine.search("imclone")
        engine.search(untouched)
        stats = engine.read_cache_stats()["results"]
        assert stats["invalidations"] == 1   # only the imclone entry
        assert stats["hits"] == 1            # the other query survived

    def test_new_term_appearance_invalidates(self):
        engine = build_engine(config=cached_config())
        assert engine.search("unheard") == []
        engine.index_document("unheard of term")
        assert [r.doc_id for r in engine.search("unheard")] == [
            len(DEFAULT_CORPUS)
        ]

    def test_disposition_invalidates_cached_results(self):
        """The fingerprint's disposition-count component must catch a
        live ``dispose_expired``: postings of a disposed document stay
        on WORM (lists are append-only), so only the disposition log
        distinguishes a stale cached result from a fresh one."""
        engine = build_engine(
            config=cached_config(retention_period=10),
        )
        before = [r.doc_id for r in engine.search("imclone")]
        assert 0 in before
        disposed = engine.dispose_expired(now=10_000)
        assert disposed  # every document is past the tiny horizon
        after = [r.doc_id for r in engine.search("imclone")]
        assert after == []
        stats = engine.read_cache_stats()["results"]
        assert stats["invalidations"] >= 1
        assert stats["hits"] == 0

    def test_segment_merge_forgets_retired_lists(self):
        """Merging segments retires their posting lists; the block cache
        and jump memos must drop them instead of pinning dead entries."""
        from dataclasses import replace

        engine = build_engine(
            config=replace(
                cached_config(),
                tail_max_docs=2,
                merge_at_segments=None,
            )
        )
        engine.search("imclone")  # warms blocks/memos on segment lists
        retired = [
            name
            for segment in engine.iter_segments()
            for name in segment.list_file_names()
        ]
        assert retired
        engine.merge_segments()
        cache = engine.read_cache
        assert all(
            key[0] not in retired for key in cache.blocks._entries
        )
        assert all(name not in retired for name in cache._memos)
        # And the merged layout still answers identically.
        legacy = build_engine()
        assert [r.doc_id for r in engine.search("imclone")] == [
            r.doc_id for r in legacy.search("imclone")
        ]

    def test_cached_results_are_defensive_copies(self):
        engine = build_engine(config=cached_config())
        first = engine.match("imclone")
        first.clear()
        next(iter(engine.match("imclone").values()))  # still intact

    def test_cache_span_recorded(self):
        engine = build_engine(config=cached_config())
        engine.search("imclone")
        trace = QueryTrace("imclone")
        engine.search("imclone", trace=trace)
        spans = {s["name"]: s for s in trace.to_dict()["spans"]}
        assert spans["cache"]["attrs"]["hit"] is True
        assert spans["cache"]["attrs"]["policy"] == "lru"

    def test_verify_reruns_on_cached_results(self):
        """Result verification is never skipped for cache hits."""
        from repro.adversary.attacks import posting_stuffing_attack
        from repro.errors import TamperDetectedError

        engine = build_engine(config=cached_config())
        engine.search("imclone", verify=True)
        tid = engine.term_id("imclone")
        posting_stuffing_attack(
            engine._existing_list(engine._list_id_for(tid)),
            tid,
            count=len(engine.documents) + 3,
        )
        # The attack *appended* postings, so the fingerprint changed and
        # retrieval re-runs; either way verification must fire.
        with pytest.raises(TamperDetectedError):
            engine.search("imclone", verify=True)

    def test_jump_memo_reduces_block_loads(self):
        # Small blocks so each posting list spans many blocks and the
        # jump index actually navigates.
        config = cached_config(block_size=512)
        engine = build_engine(
            [f"alpha beta doc{i}" for i in range(200)], config=config
        )
        engine.search("+alpha +beta")
        stats = engine.read_cache_stats()
        # Append via term counts: invalidates the result tier and only
        # the tail posting blocks, so the re-run hits memo + blocks.
        engine.index_term_counts({"alpha": 1, "beta": 1})
        engine.search("+alpha +beta")
        stats2 = engine.read_cache_stats()
        assert stats["jump_memo"]["hits"] > 0
        assert stats2["jump_memo"]["hits"] > stats["jump_memo"]["hits"]
        assert stats2["blocks"]["hits"] > stats["blocks"]["hits"]

    def test_metrics_export(self):
        engine = build_engine(config=cached_config())
        engine.search("imclone")
        engine.search("imclone")
        registry = MetricsRegistry()
        export_read_cache(registry, engine.read_cache, shard="0")
        snapshot = registry.snapshot()
        hits = {
            s["labels"]["tier"]: s["value"]
            for s in snapshot["repro_readcache_hits_total"]["series"]
        }
        assert hits["results"] == 1
        assert "repro_readcache_resident_bytes" in snapshot

    def test_export_no_op_when_cache_off(self):
        registry = MetricsRegistry()
        export_read_cache(registry, None)
        assert registry.snapshot() == {}


class TestShardedIntegration:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_sharded_repeat_query_hits_per_shard_caches(self, policy):
        from tests.helpers import SHARD_CONFIG, build_sharded
        from dataclasses import replace

        config = replace(SHARD_CONFIG, read_cache=True, cache_policy=policy)
        sharded = build_sharded(
            [f"common doc{i}" for i in range(12)],
            num_shards=3,
            config=config,
        )
        with sharded:
            first = sharded.search("common", top_k=20)
            second = sharded.search("common", top_k=20)
            assert [(r.doc_id, r.score) for r in first] == [
                (r.doc_id, r.score) for r in second
            ]
            stats = sharded.read_cache_stats()
            assert stats["policy"] == policy
            assert stats["results"]["hits"] >= 1
            assert len(stats["per_shard"]) == 3

    def test_batch_ingest_keeps_shard_caches_coherent(self):
        from tests.helpers import SHARD_CONFIG, build_sharded
        from dataclasses import replace

        config = replace(SHARD_CONFIG, read_cache=True)
        sharded = build_sharded(
            [f"common doc{i}" for i in range(8)], num_shards=2, config=config
        )
        with sharded:
            sharded.search("common", top_k=50)
            sharded.index_batch([f"common late{i}" for i in range(5)])
            hits = {r.doc_id for r in sharded.search("common", top_k=50)}
            assert hits == set(range(13))

    def test_sharded_stats_none_when_off(self):
        from tests.helpers import build_sharded

        sharded = build_sharded(["a b"], num_shards=2)
        with sharded:
            assert sharded.read_cache_stats() is None
