"""Stateful coherence proof for the read-path cache hierarchy.

A Hypothesis state machine drives one cache-off reference engine and one
cached engine per eviction policy over the *same* WORM stores through
interleaved appends, searches, and restarts.  After every search, all
cached variants must return exactly the reference's ``(doc_id, score)``
list — i.e. the cache is invisible except for speed, under every policy,
across appends (exact invalidation) and restarts (caches are derived
state; recovery re-reads the device).

Tail-mode variants ride the same machine: engines running the
write–read decoupled index (mutable tail + sealed WORM segments, with
and without the read cache on top) must answer byte-identically to the
legacy reference through interleaved appends, *seals*, *merges*, and
restarts — the structural proof that decoupling the write path never
changes what a query returns.
"""

from dataclasses import replace

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.worm.cache import READ_CACHE_POLICIES

#: Small blocks + a jump index so every tier (decoded blocks, results,
#: jump memo) is actually exercised by modest histories.
BASE_CONFIG = EngineConfig(num_lists=16, branching=4, block_size=512)

POLICIES = sorted(READ_CACHE_POLICIES)

VOCAB = [f"word{i}" for i in range(8)]

doc_texts = st.lists(
    st.sampled_from(VOCAB), min_size=1, max_size=6
).map(" ".join)

query_terms = st.lists(
    st.sampled_from(VOCAB), min_size=1, max_size=3, unique=True
)


class ReadCacheCoherence(RuleBasedStateMachine):
    """Cache-on engines always answer exactly like the cache-off one."""

    @initialize()
    def build_variants(self):
        self.variants = {}
        reference = TrustworthySearchEngine(replace(BASE_CONFIG))
        self.variants["off"] = reference
        for policy in POLICIES:
            config = replace(
                BASE_CONFIG,
                read_cache=True,
                cache_policy=policy,
                # Tiny budget: eviction churn during the history, so
                # coherence holds under replacement too, not just hits.
                read_cache_mb=0.01,
            )
            self.variants[policy] = TrustworthySearchEngine(config)
        # Tail-mode variants: auto-seal + auto-merge at tiny thresholds
        # ("tail"), manual-only seal/merge with popular-term layout
        # ("tail-popular"), and tail + read cache stacked ("tail-cached")
        # so segment retirement exercises the cache's forget hooks.
        self.variants["tail"] = TrustworthySearchEngine(
            replace(BASE_CONFIG, tail_max_docs=3, merge_at_segments=3)
        )
        self.variants["tail-popular"] = TrustworthySearchEngine(
            replace(
                BASE_CONFIG,
                tail_max_docs=100,
                seal_strategy="popular",
                seal_popular_terms=2,
                merge_at_segments=None,
            )
        )
        self.variants["tail-cached"] = TrustworthySearchEngine(
            replace(
                BASE_CONFIG,
                tail_max_docs=4,
                merge_at_segments=3,
                read_cache=True,
                cache_policy="lru",
                read_cache_mb=0.01,
            )
        )
        self.num_docs = 0

    @rule(text=doc_texts)
    def append(self, text):
        ids = {
            name: engine.index_document(text)
            for name, engine in self.variants.items()
        }
        self.num_docs += 1
        assert set(ids.values()) == {self.num_docs - 1}

    @rule(terms=query_terms, conjunctive=st.booleans())
    def search(self, terms, conjunctive):
        query = " ".join(f"+{t}" for t in terms) if conjunctive else " ".join(terms)
        expected = [
            (r.doc_id, r.score)
            for r in self.variants["off"].search(query, top_k=self.num_docs + 1)
        ]
        for name, engine in self.variants.items():
            if name == "off":
                continue
            got = [
                (r.doc_id, r.score)
                for r in engine.search(query, top_k=self.num_docs + 1)
            ]
            assert got == expected, f"variant {name} diverged on {query!r}"

    @rule(terms=query_terms, lo=st.integers(0, 6), span=st.integers(0, 4))
    def time_range_search(self, terms, lo, span):
        query = " ".join(terms) + f" @{lo}..{lo + span}"
        expected = [
            (r.doc_id, r.score)
            for r in self.variants["off"].search(query, top_k=self.num_docs + 1)
        ]
        for name, engine in self.variants.items():
            if name == "off":
                continue
            got = [
                (r.doc_id, r.score)
                for r in engine.search(query, top_k=self.num_docs + 1)
            ]
            assert got == expected, f"variant {name} diverged on {query!r}"

    @rule()
    def seal(self):
        """Freeze every tail variant's tail into a WORM segment."""
        for engine in self.variants.values():
            if engine.tail_enabled:
                engine.seal_tail()

    @rule()
    def merge(self):
        """Background-merge each tail variant's live segments."""
        for engine in self.variants.values():
            if engine.tail_enabled:
                engine.merge_segments()

    @rule()
    def restart(self):
        """Rebuild every engine from its WORM store, caches cold."""
        for name, engine in list(self.variants.items()):
            self.variants[name] = TrustworthySearchEngine(
                engine.config, store=engine.store
            )


ReadCacheCoherence.TestCase.settings = settings(
    max_examples=12, stateful_step_count=15, deadline=None
)

TestReadCacheCoherence = ReadCacheCoherence.TestCase
