"""Integration tests for the write–read decoupled (tail-mode) engine.

The contract under test: with ``tail_max_docs`` set, ingest lands in
the in-memory tail, a sealer freezes it into immutable WORM segments,
and a merger compacts segments online — and none of that is observable
through the query API except as speed.  Every test here compares a
tail-mode engine against a legacy synchronous engine over the same
corpus, including across restarts, dispositions, and simulated crashes
at every WAL stage of a seal.
"""

from dataclasses import replace

import pytest

from repro.errors import WorkloadError
from repro.search.engine import EngineConfig, TrustworthySearchEngine
from repro.worm.faults import (
    FaultInjectingWormDevice,
    FaultPlan,
    SimulatedCrashError,
)
from repro.worm.persistent import JournaledWormDevice
from repro.worm.storage import CachedWormStore
from tests.helpers import DEFAULT_CORPUS

LEGACY = EngineConfig(num_lists=32, branching=4, retention_period=100)
QUERIES = [
    "imclone finance",
    "stewart waksal imclone",
    "+stewart +waksal +imclone",
    "+quarterly +finance",
    "quarterly revenue @1..4",
    "nonexistentterm",
]


def tail_config(**kwargs) -> EngineConfig:
    defaults = dict(tail_max_docs=3, merge_at_segments=None)
    defaults.update(kwargs)
    return replace(LEGACY, **defaults)


def results(engine, query, top_k=20):
    return [(r.doc_id, r.score) for r in engine.search(query, top_k=top_k)]


def assert_equivalent(tail_engine, legacy_engine, queries=QUERIES):
    for query in queries:
        assert results(tail_engine, query) == results(
            legacy_engine, query
        ), f"diverged on {query!r}"


def build_pair(tail_cfg, texts=DEFAULT_CORPUS):
    tail_engine = TrustworthySearchEngine(tail_cfg)
    legacy_engine = TrustworthySearchEngine(LEGACY)
    for text in texts:
        tail_engine.index_document(text)
        legacy_engine.index_document(text)
    return tail_engine, legacy_engine


class TestConfigValidation:
    def test_tail_max_docs_positive(self):
        with pytest.raises(WorkloadError):
            EngineConfig(tail_max_docs=0)

    def test_strategy_known(self):
        with pytest.raises(WorkloadError):
            EngineConfig(tail_max_docs=4, seal_strategy="zipf")

    def test_merge_threshold_sane(self):
        with pytest.raises(WorkloadError):
            EngineConfig(tail_max_docs=4, merge_at_segments=1)

    def test_popular_terms_non_negative(self):
        with pytest.raises(WorkloadError):
            EngineConfig(tail_max_docs=4, seal_popular_terms=-1)

    def test_tail_ops_refused_when_disabled(self):
        engine = TrustworthySearchEngine(LEGACY)
        assert not engine.tail_enabled
        with pytest.raises(WorkloadError):
            engine.seal_tail()


class TestEquivalence:
    @pytest.mark.parametrize(
        "cfg",
        [
            tail_config(),                                   # auto-seal
            tail_config(tail_max_docs=100),                  # all in tail
            tail_config(tail_max_docs=2, merge_at_segments=2),
            tail_config(
                tail_max_docs=2,
                seal_strategy="popular",
                seal_popular_terms=2,
            ),
            tail_config(tail_max_docs=2, seal_strategy="epoch"),
            tail_config(branching=None),                     # no jump index
        ],
        ids=[
            "auto-seal",
            "tail-only",
            "auto-merge",
            "popular",
            "epoch",
            "no-jump",
        ],
    )
    def test_byte_identical_results(self, cfg):
        tail_engine, legacy_engine = build_pair(cfg)
        assert_equivalent(tail_engine, legacy_engine)

    def test_manual_seal_and_merge_mid_stream(self):
        tail_engine, legacy_engine = build_pair(tail_config(tail_max_docs=100))
        assert tail_engine.seal_tail() is not None
        assert_equivalent(tail_engine, legacy_engine)
        extra = ["zebra memo for the archive", "finance zebra closing"]
        for text in extra:
            tail_engine.index_document(text)
            legacy_engine.index_document(text)
        tail_engine.seal_tail()
        assert tail_engine.merge_segments() is not None
        assert_equivalent(tail_engine, legacy_engine, QUERIES + ["zebra"])

    def test_empty_seal_and_single_segment_merge_are_noops(self):
        engine = TrustworthySearchEngine(tail_config(tail_max_docs=100))
        assert engine.seal_tail() is None
        engine.index_document("one document only")
        engine.seal_tail()
        assert engine.merge_segments() is None  # needs >= 2 live segments

    def test_dispositions_span_segments_and_tail(self):
        tail_engine = TrustworthySearchEngine(
            tail_config(tail_max_docs=2, retention_period=3)
        )
        legacy_engine = TrustworthySearchEngine(
            replace(LEGACY, retention_period=3)
        )
        for text in DEFAULT_CORPUS:
            tail_engine.index_document(text)
            legacy_engine.index_document(text)
        for engine in (tail_engine, legacy_engine):
            engine.dispose_expired(now=5)  # expires the earliest docs
        assert_equivalent(tail_engine, legacy_engine)
        assert tail_engine.retention.is_disposed(0)

    def test_incident_handling_on_tail_engine(self):
        tail_engine, _ = build_pair(tail_config())
        hits, report = tail_engine.search_with_incident_handling("imclone")
        assert report.ok and hits

    def test_segments_info_shape(self):
        tail_engine, _ = build_pair(tail_config(tail_max_docs=2))
        info = tail_engine.segments_info()
        assert info["tail_enabled"]
        assert info["tail_docs"] + sum(
            seg["doc_count"] for seg in info["segments"]
        ) == len(DEFAULT_CORPUS)
        ranges = [(s["first_doc"], s["last_doc"]) for s in info["segments"]]
        assert ranges == sorted(ranges)  # disjoint ascending

    def test_archive_stats_counts_tail_and_segments(self):
        tail_engine, legacy_engine = build_pair(tail_config(tail_max_docs=4))
        stats = tail_engine.archive_stats()
        assert stats["segments_live"] >= 1
        assert stats["tail_docs"] == tail_engine._tail.doc_count
        # Total postings match the legacy layout (same documents).
        assert stats["postings"] == legacy_engine.archive_stats()["postings"]


class TestRestartRecovery:
    def open(self, path, cfg):
        device = JournaledWormDevice(path, block_size=4096)
        return TrustworthySearchEngine(
            cfg, store=CachedWormStore(None, device=device)
        )

    def test_tail_docs_recover_from_wal_logs(self, tmp_path):
        path = str(tmp_path / "arch.worm")
        cfg = tail_config(tail_max_docs=4)
        engine = self.open(path, cfg)
        legacy_engine = TrustworthySearchEngine(LEGACY)
        for text in DEFAULT_CORPUS:
            engine.index_document(text)
            legacy_engine.index_document(text)
        assert engine._tail.doc_count == 2  # docs 4, 5 unsealed
        engine.store.device.close()

        reopened = self.open(path, cfg)
        # The unsealed docs were never written to posting lists, yet
        # they recover: the tail is derived from the journaled document
        # and lexicon logs.
        assert reopened._tail.doc_count == 2
        before, after = engine.segments_info(), reopened.segments_info()
        # The generation counter is process-local (it versions in-process
        # result-cache fingerprints), so it restarts at zero.
        before.pop("tail_generation"), after.pop("tail_generation")
        assert after == before
        assert_equivalent(reopened, legacy_engine)
        reopened.store.device.close()

    def test_ingest_continues_after_restart(self, tmp_path):
        path = str(tmp_path / "arch.worm")
        cfg = tail_config(tail_max_docs=3)
        engine = self.open(path, cfg)
        legacy_engine = TrustworthySearchEngine(LEGACY)
        for text in DEFAULT_CORPUS:
            engine.index_document(text)
            legacy_engine.index_document(text)
        engine.store.device.close()

        reopened = self.open(path, cfg)
        extra = ["zebra after restart", "another zebra entry"]
        for text in extra:
            reopened.index_document(text)
            legacy_engine.index_document(text)
        assert_equivalent(reopened, legacy_engine, QUERIES + ["zebra"])
        reopened.store.device.close()


class TestSealCrashRecovery:
    """Power loss at any WAL stage of any seal write loses nothing.

    A seal writes the segment's posting lists (``create`` + ``append``
    ops) and then commits one manifest record (the atomic step).  The
    sweep below crashes at every counted fault point of the whole seal,
    in both WAL stages, and proves each crash recovers to an engine that
    answers exactly like an uncrashed reference — with the interrupted
    seal either fully invisible (pre-manifest) or fully applied
    (post-manifest), never half-visible.
    """

    CFG = tail_config(tail_max_docs=100, branching=None, block_size=512)

    def prepare(self, path):
        device = JournaledWormDevice(path, block_size=512)
        engine = TrustworthySearchEngine(
            self.CFG, store=CachedWormStore(None, device=device)
        )
        for text in DEFAULT_CORPUS:
            engine.index_document(text)
        device.close()

    def count_seal_ops(self, tmp_path):
        """Dry-run a seal under counting (no faults armed)."""
        path = str(tmp_path / "dry.worm")
        self.prepare(path)
        plan = FaultPlan()
        device = FaultInjectingWormDevice(path, plan=plan, block_size=512)
        engine = TrustworthySearchEngine(
            self.CFG, store=CachedWormStore(None, device=device)
        )
        assert engine.seal_tail() is not None
        device.close()
        # WAL points are counted per "op:stage"; each op passes both
        # stages, so either stage's count is the op's call total.
        return {
            op: plan.count(f"{op}:between-log-and-apply")
            for op in ("create", "append")
            if plan.count(f"{op}:between-log-and-apply")
        }

    def test_crash_sweep_over_every_seal_write(self, tmp_path):
        reference = TrustworthySearchEngine(self.CFG)
        for text in DEFAULT_CORPUS:
            reference.index_document(text)

        ops = self.count_seal_ops(tmp_path)
        assert ops["create"] >= 1 and ops["append"] >= 2
        cases = [
            (op, stage, call)
            for op, total in sorted(ops.items())
            for call in range(1, total + 1)
            for stage in ("between-log-and-apply", "after-apply")
        ]
        assert len(cases) > 10  # the sweep is real, not a single point
        for op, stage, call in cases:
            path = str(tmp_path / f"{op}-{stage}-{call}.worm")
            self.prepare(path)
            plan = FaultPlan().crash(f"{op}:{stage}", on_call=call)
            device = FaultInjectingWormDevice(path, plan=plan, block_size=512)
            engine = TrustworthySearchEngine(
                self.CFG, store=CachedWormStore(None, device=device)
            )
            with pytest.raises(SimulatedCrashError):
                engine.seal_tail()
            device.close()

            recovered_device = JournaledWormDevice(path, block_size=512)
            recovered = TrustworthySearchEngine(
                self.CFG,
                store=CachedWormStore(None, device=recovered_device),
            )
            # No acknowledged document is lost, and results are exactly
            # the reference's, whether or not the manifest committed.
            assert_equivalent(recovered, reference)
            # The archive remains fully operational: seal whatever is
            # still tail-resident (a no-op if the crashed seal already
            # committed) and burn, never reuse, orphan segment numbers.
            manifest_before = recovered.segments_info()["manifest_records"]
            seg_no = recovered.seal_tail()
            if manifest_before == 0:
                assert seg_no is not None
            assert_equivalent(recovered, reference)
            recovered_device.close()

    def test_post_crash_orphans_do_not_leak_into_queries(self, tmp_path):
        """An orphaned (manifest-less) segment must stay invisible."""
        path = str(tmp_path / "orphan.worm")
        self.prepare(path)
        # Crash after all list data but before the manifest record.  The
        # final append of a seal is the manifest commit — and a logged
        # append survives the crash via WAL replay — so to leave a true
        # orphan, die right after the *last list* append applied, before
        # the manifest append is even logged.
        ops = self.count_seal_ops(tmp_path)
        plan = FaultPlan().crash(
            "append:after-apply", on_call=ops["append"] - 1
        )
        device = FaultInjectingWormDevice(path, plan=plan, block_size=512)
        engine = TrustworthySearchEngine(
            self.CFG, store=CachedWormStore(None, device=device)
        )
        with pytest.raises(SimulatedCrashError):
            engine.seal_tail()
        device.close()

        recovered_device = JournaledWormDevice(path, block_size=512)
        recovered = TrustworthySearchEngine(
            self.CFG, store=CachedWormStore(None, device=recovered_device)
        )
        info = recovered.segments_info()
        assert info["manifest_records"] == 0 and not info["segments"]
        assert info["tail_docs"] == len(DEFAULT_CORPUS)
        # Orphan list files exist on WORM but the next seal skips their
        # segment number.
        new_seg = recovered.seal_tail()
        assert new_seg is not None and new_seg >= 1
        recovered_device.close()
