"""Unit tests for admission control: buckets, gates, and the controller.

Everything here runs with an injected fake clock or real threads on
tiny timeouts — no HTTP server, no engine.
"""

import threading
import time

import pytest

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionError,
    AdmissionGate,
    TenantRateLimiter,
    TokenBucket,
)


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_rejection_with_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        for _ in range(3):
            admitted, retry_after = bucket.try_acquire()
            assert admitted and retry_after == 0.0
        admitted, retry_after = bucket.try_acquire()
        assert not admitted
        # Empty bucket at 2 tokens/s: one token is half a second away.
        assert retry_after == pytest.approx(0.5)

    def test_oversized_cost_rejected_explicitly(self):
        """A cost above the bucket capacity can never be admitted; any
        finite retry_after would send the client into a futile loop."""
        bucket = TokenBucket(rate=2.0, burst=3, clock=FakeClock())
        with pytest.raises(AdmissionError):
            bucket.try_acquire(cost=4)
        # A full-burst request remains admissible.
        admitted, retry_after = bucket.try_acquire(cost=3)
        assert admitted and retry_after == 0.0

    def test_oversized_cost_rejected_even_when_drained(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire(cost=2)[0]
        with pytest.raises(AdmissionError):
            bucket.try_acquire(cost=2.5)

    def test_refill_readmits(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        clock.advance(1.0)
        assert bucket.try_acquire()[0]

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)  # an hour of idle refill is still just `burst`
        assert bucket.tokens == pytest.approx(2.0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(AdmissionError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(AdmissionError):
            TokenBucket(rate=1, burst=0.5)


class TestTenantRateLimiter:
    def test_tenants_have_independent_buckets(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.try_acquire("alice")[0]
        assert not limiter.try_acquire("alice")[0]
        # Alice's exhaustion does not touch Bob's bucket.
        assert limiter.try_acquire("bob")[0]
        assert len(limiter) == 2

    def test_overflow_bucket_shared_when_table_full(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(
            rate=1.0, burst=1, max_tenants=1, clock=clock
        )
        assert limiter.try_acquire("alice")[0]  # gets the one real slot
        assert limiter.try_acquire("mallory-1")[0]  # spends the overflow token
        # A different unknown tenant shares the same (now empty) bucket:
        # collectively rate limited, not individually.
        assert not limiter.try_acquire("mallory-2")[0]
        assert len(limiter) == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(AdmissionError):
            TenantRateLimiter(rate=1.0, burst=1, max_tenants=0)
        with pytest.raises(AdmissionError):
            TenantRateLimiter(rate=-1.0, burst=1)


class TestAdmissionGate:
    def test_free_slots_admit_even_with_zero_queue(self):
        gate = AdmissionGate(max_inflight=2, max_queue=0, queue_timeout=0)
        assert gate.try_enter()
        assert gate.try_enter()
        assert gate.inflight == 2
        assert not gate.try_enter()  # full, and nothing may wait
        gate.leave()
        assert gate.try_enter()  # a freed slot admits again
        gate.leave()
        gate.leave()
        assert gate.inflight == 0

    def test_queued_request_gets_freed_slot(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1, queue_timeout=5.0)
        assert gate.try_enter()
        outcome = []
        waiter = threading.Thread(target=lambda: outcome.append(gate.try_enter()))
        waiter.start()
        deadline = time.monotonic() + 2.0
        while gate.queue_depth == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert gate.queue_depth == 1
        gate.leave()  # hands the slot to the queued waiter
        waiter.join(timeout=2.0)
        assert outcome == [True]
        gate.leave()
        assert gate.queue_depth == 0 and gate.inflight == 0

    def test_full_queue_sheds_immediately(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1, queue_timeout=5.0)
        assert gate.try_enter()
        waiter = threading.Thread(target=gate.try_enter)
        waiter.start()
        deadline = time.monotonic() + 2.0
        while gate.queue_depth == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        started = time.monotonic()
        assert not gate.try_enter()  # queue full: no waiting at all
        assert time.monotonic() - started < 1.0
        gate.leave()
        waiter.join(timeout=2.0)
        gate.leave()

    def test_queue_timeout_sheds_the_waiter(self):
        gate = AdmissionGate(max_inflight=1, max_queue=4, queue_timeout=0.05)
        assert gate.try_enter()
        assert not gate.try_enter()  # waits 0.05s, then shed
        assert gate.queue_depth == 0
        gate.leave()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(AdmissionError):
            AdmissionGate(max_inflight=0, max_queue=1)
        with pytest.raises(AdmissionError):
            AdmissionGate(max_inflight=1, max_queue=-1)
        with pytest.raises(AdmissionError):
            AdmissionGate(max_inflight=1, max_queue=1, queue_timeout=-1)


class TestAdmissionController:
    def test_rate_limit_decision(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionConfig(rate=1.0, burst=1), clock=clock
        )
        first = controller.admit("alice")
        assert first.admitted and first.reason is None
        controller.release(first)
        second = controller.admit("alice")
        assert not second.admitted
        assert second.reason == AdmissionController.RATE_LIMITED
        assert second.retry_after == pytest.approx(1.0)
        controller.release(second)  # releasing a rejection is a no-op

    def test_overload_decision(self):
        controller = AdmissionController(
            AdmissionConfig(rate=None, max_inflight=1, max_queue=0, queue_timeout=0)
        )
        first = controller.admit("alice")
        assert first.admitted
        shed = controller.admit("bob")
        assert not shed.admitted
        assert shed.reason == AdmissionController.OVERLOADED
        controller.release(first)
        assert controller.admit("bob").admitted

    def test_rate_none_disables_the_limiter(self):
        controller = AdmissionController(AdmissionConfig(rate=None))
        assert controller.limiter is None
        for _ in range(50):  # far beyond any default bucket
            decision = controller.admit("alice")
            assert decision.admitted
            controller.release(decision)
