"""Handler unit tests: status codes, schemas, and admission — no socket.

:meth:`ArchiveService.dispatch` takes ``(method, path, payload)`` and
returns ``(status, body, headers)``, so the whole request plane is
exercised here against an in-memory engine.
"""

import pytest

from repro.errors import TamperDetectedError
from repro.observability import counter_value
from repro.service import (
    PROTOCOL_SCHEMA,
    AdmissionConfig,
    ArchiveService,
    ServiceConfig,
)
from tests.helpers import DEFAULT_CORPUS, build_engine


@pytest.fixture()
def service():
    return ArchiveService(build_engine(batch=True))


class TestSearch:
    def test_post_search_answers_ranked_hits(self, service):
        status, body, _ = service.dispatch(
            "POST", "/search", {"query": "imclone", "top_k": 5}
        )
        assert status == 200
        assert body["schema"] == PROTOCOL_SCHEMA
        assert body["count"] == len(body["results"]) > 0
        hit = body["results"][0]
        assert set(hit) == {"doc_id", "score"}
        assert body["verified"] is False

    def test_verified_search_reports_ok(self, service):
        status, body, _ = service.dispatch(
            "POST", "/search", {"query": "imclone", "verify": True}
        )
        assert status == 200
        assert body["verified"] is True
        assert body["ok"] is True
        assert body["violations"] == []

    def test_get_search_uses_query_parameters(self, service):
        status, body, _ = service.dispatch(
            "GET", "/search", {"query": "imclone", "top_k": 2}
        )
        assert status == 200
        assert 0 < body["count"] <= 2

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {},
            {"query": ""},
            {"query": "ok", "top_k": 0},
            {"query": "ok", "top_k": 10**6},
            {"query": "ok", "top_k": True},
            {"query": "ok", "verify": "yes"},
            {"query": "ok", "tpo_k": 3},  # unknown field
        ],
    )
    def test_malformed_search_is_400(self, service, payload):
        status, body, _ = service.dispatch("POST", "/search", payload)
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "/search" in body["error"]["message"]


class TestIngest:
    def test_ingest_assigns_sequential_ids_and_is_searchable(self, service):
        status, body, _ = service.dispatch(
            "POST",
            "/ingest",
            {"documents": ["xylophone ruling", "xylophone appeal"]},
        )
        assert status == 200
        base = len(DEFAULT_CORPUS)
        assert body["doc_ids"] == [base, base + 1]
        assert body["count"] == 2
        _, found, _ = service.dispatch("POST", "/search", {"query": "xylophone"})
        assert {hit["doc_id"] for hit in found["results"]} == {base, base + 1}

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"documents": []},
            {"documents": "one string"},
            {"documents": [1, 2]},
            {"documents": ["a"], "commit_times": [1, 2]},
            {"documents": ["a"], "commit_times": "soon"},
            {"documents": ["a"], "extra": True},
        ],
    )
    def test_malformed_ingest_is_400(self, service, payload):
        status, body, _ = service.dispatch("POST", "/ingest", payload)
        assert status == 400
        assert body["error"]["code"] == "bad_request"


class TestRouting:
    def test_unknown_endpoint_is_404(self, service):
        status, body, _ = service.dispatch("GET", "/nope", None)
        assert status == 404
        assert body["error"]["code"] == "not_found"

    @pytest.mark.parametrize(
        "method,path",
        [
            ("DELETE", "/search"),
            ("POST", "/audit"),
            ("POST", "/healthz"),
            ("POST", "/metrics"),
        ],
    )
    def test_wrong_method_is_405_with_allow(self, service, method, path):
        status, body, headers = service.dispatch(method, path, None)
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"
        assert "Allow" in headers


class TestAdmission:
    def test_rate_limited_tenant_gets_429_with_retry_after(self):
        config = ServiceConfig(admission=AdmissionConfig(rate=0.001, burst=1))
        service = ArchiveService(build_engine(batch=True), config=config)
        status, _, _ = service.dispatch("POST", "/search", {"query": "imclone"})
        assert status == 200
        status, body, headers = service.dispatch(
            "POST", "/search", {"query": "imclone"}
        )
        assert status == 429
        assert body["error"]["code"] == "rate_limited"
        assert int(headers["Retry-After"]) >= 1
        assert body["error"]["retry_after_seconds"] >= 1
        # Another tenant is not punished for this one's burst.
        status, _, _ = service.dispatch(
            "POST", "/search", {"query": "imclone"}, tenant="auditor"
        )
        assert status == 200
        assert (
            counter_value(
                service.registry,
                "repro_service_rejections_total",
                reason="rate_limit",
            )
            == 1
        )

    def test_full_gate_sheds_with_503(self):
        config = ServiceConfig(
            admission=AdmissionConfig(
                rate=None, max_inflight=1, max_queue=0, queue_timeout=0
            )
        )
        service = ArchiveService(build_engine(batch=True), config=config)
        assert service.admission.gate.try_enter()  # occupy the only slot
        try:
            status, body, headers = service.dispatch(
                "POST", "/search", {"query": "imclone"}
            )
        finally:
            service.admission.gate.leave()
        assert status == 503
        assert body["error"]["code"] == "overloaded"
        assert "Retry-After" in headers
        # The slot freed up: the same request is admitted now.
        status, _, _ = service.dispatch("POST", "/search", {"query": "imclone"})
        assert status == 200

    def test_ops_endpoints_bypass_admission(self):
        config = ServiceConfig(admission=AdmissionConfig(rate=0.001, burst=1))
        service = ArchiveService(build_engine(batch=True), config=config)
        assert service.dispatch("POST", "/search", {"query": "imclone"})[0] == 200
        assert service.dispatch("POST", "/search", {"query": "imclone"})[0] == 429
        assert service.dispatch("GET", "/healthz", None)[0] == 200
        assert service.dispatch("GET", "/metrics", None)[0] == 200


class TestDrain:
    def test_draining_rejects_work_but_answers_ops(self, service):
        service.begin_drain()
        status, body, headers = service.dispatch(
            "POST", "/search", {"query": "imclone"}
        )
        assert status == 503
        assert body["error"]["code"] == "draining"
        assert headers.get("Connection") == "close"
        status, body, _ = service.dispatch("GET", "/healthz", None)
        assert status == 503
        assert body["status"] == "draining"
        assert service.dispatch("GET", "/metrics", None)[0] == 200


class TestOpsEndpoints:
    def test_healthz_shape(self, service):
        status, body, _ = service.dispatch("GET", "/healthz", None)
        assert status == 200
        assert body["status"] == "ok"
        assert body["documents"] == len(DEFAULT_CORPUS)
        assert body["shards"] == 1
        assert body["uptime_seconds"] >= 0

    def test_audit_reports_clean_archive(self, service):
        status, body, _ = service.dispatch("GET", "/audit", None)
        assert status == 200
        assert body["ok"] is True
        assert body["subjects"] > 0
        assert body["entries_checked"] > 0
        assert body["violations"] == []

    def test_metrics_prometheus_text(self, service):
        service.dispatch("POST", "/search", {"query": "imclone"})
        status, body, headers = service.dispatch("GET", "/metrics", None)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_service_requests_total" in body["text"]
        assert "repro_service_queue_depth" in body["text"]

    def test_metrics_json_snapshot(self, service):
        status, body, _ = service.dispatch(
            "GET", "/metrics", {"format": "json"}
        )
        assert status == 200
        assert body["schema"] == "repro-metrics/v1"
        assert isinstance(body["metrics"], dict)

    def test_metrics_unknown_format_is_400(self, service):
        status, body, _ = service.dispatch(
            "GET", "/metrics", {"format": "xml"}
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"


class _BoomEngine:
    """An engine whose read path fails — exercises error mapping."""

    documents = ()

    def __init__(self, exc: Exception):
        self._exc = exc

    def search(self, query, top_k=10):
        raise self._exc


class TestErrorMapping:
    def test_unexpected_exception_is_500_internal(self):
        service = ArchiveService(_BoomEngine(RuntimeError("kaboom")))
        status, body, _ = service.dispatch("POST", "/search", {"query": "x"})
        assert status == 500
        assert body["error"]["code"] == "internal"
        assert "RuntimeError" in body["error"]["message"]

    def test_tampering_is_500_with_its_own_code(self):
        service = ArchiveService(
            _BoomEngine(
                TamperDetectedError(
                    "forged posting", location="list 3", invariant="ordering"
                )
            )
        )
        status, body, _ = service.dispatch("POST", "/search", {"query": "x"})
        assert status == 500
        assert body["error"]["code"] == "tampering"
