"""End-to-end service tests: real HTTP, concurrency, and the drain.

These drive :class:`ArchiveServer` over loopback sockets with the
load-harness :class:`HTTPTransport` as the client, covering what the
socketless handler tests cannot: keep-alive plumbing, the reader-writer
discipline under real thread interleavings, and the graceful-drain
contract (no accepted request is lost).
"""

import threading
import time
from dataclasses import replace

import pytest

from repro.cli import open_archive
from repro.loadtest import (
    HTTPTransport,
    RateLimitedError,
    ServiceClientError,
    ServiceOverloadedError,
)
from repro.search.engine import EngineConfig
from repro.service import (
    AdmissionConfig,
    ArchiveServer,
    ArchiveService,
    ServiceConfig,
)
from tests.helpers import DEFAULT_CORPUS, SMALL_CONFIG, build_engine

#: Keep pathological-connection waits short in tests.
FAST = ServiceConfig(request_timeout=2.0)

ARCHIVE_CONFIG = EngineConfig(num_lists=64, block_size=4096, branching=None)


@pytest.fixture()
def server():
    with ArchiveServer(ArchiveService(build_engine(batch=True), config=FAST)) as srv:
        yield srv


class TestEndToEnd:
    def test_search_ingest_audit_roundtrip(self, server):
        with HTTPTransport(server.endpoint) as client:
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["documents"] == len(DEFAULT_CORPUS)

            hits = client.search("imclone", top_k=5)
            assert hits and all(isinstance(h.doc_id, int) for h in hits)

            doc_ids = client.index_batch(["quagga sighting report"])
            assert doc_ids == [len(DEFAULT_CORPUS)]
            assert [h.doc_id for h in client.search("quagga")] == doc_ids

            audit = client._call("GET", "/audit")
            assert audit["ok"] is True

            metrics = client._call("GET", "/metrics")
            assert "repro_service_requests_total" in metrics["text"]

    def test_get_search_query_string(self, server):
        with HTTPTransport(server.endpoint) as client:
            body = client._call("GET", "/search?q=imclone&top_k=2")
            assert 0 < body["count"] <= 2

    def test_rate_limit_over_the_wire(self):
        config = ServiceConfig(
            admission=AdmissionConfig(rate=0.001, burst=1), request_timeout=2.0
        )
        service = ArchiveService(build_engine(batch=True), config=config)
        with ArchiveServer(service) as srv, HTTPTransport(srv.endpoint) as client:
            assert client.search("imclone")
            with pytest.raises(RateLimitedError) as excinfo:
                client.search("imclone")
            assert excinfo.value.retry_after >= 1

    def test_overload_over_the_wire(self):
        config = ServiceConfig(
            admission=AdmissionConfig(
                rate=None, max_inflight=1, max_queue=0, queue_timeout=0
            ),
            request_timeout=2.0,
        )
        service = ArchiveService(build_engine(batch=True), config=config)
        with ArchiveServer(service) as srv, HTTPTransport(srv.endpoint) as client:
            service.admission.gate.try_enter()  # simulate a saturated service
            try:
                with pytest.raises(ServiceOverloadedError):
                    client.search("imclone")
            finally:
                service.admission.gate.leave()
            assert client.search("imclone")  # slot free again


class TestSnapshotConsistency:
    def test_searches_never_observe_a_partial_ingest(self, server):
        """Ingest batches are atomic to concurrent readers.

        Every document in a batch carries the same marker term, so any
        search observing only part of a batch would count a non-multiple
        of the batch size.
        """
        batch_size, batches = 8, 5
        counts, failures = [], []
        stop = threading.Event()

        def searcher():
            with HTTPTransport(server.endpoint) as client:
                while not stop.is_set():
                    try:
                        counts.append(len(client.search("zanzibar", top_k=100)))
                    except ServiceClientError as exc:  # pragma: no cover
                        failures.append(exc)
                        return

        readers = [threading.Thread(target=searcher) for _ in range(3)]
        for reader in readers:
            reader.start()
        with HTTPTransport(server.endpoint) as writer:
            for batch_no in range(batches):
                writer.index_batch(
                    [
                        f"zanzibar cable {batch_no}-{i}"
                        for i in range(batch_size)
                    ]
                )
        stop.set()
        for reader in readers:
            reader.join(timeout=10.0)
        assert not failures
        assert counts, "searchers never ran"
        torn = [count for count in counts if count % batch_size]
        assert not torn, f"saw partial batches: {sorted(set(torn))}"


class TestGracefulDrain:
    def test_drain_is_idempotent_and_rejects_after(self, server):
        with HTTPTransport(server.endpoint) as client:
            assert client.search("imclone")
        server.drain()
        server.drain()  # second drain is a no-op
        with HTTPTransport(server.endpoint, timeout=1.0) as client:
            with pytest.raises(ServiceClientError):  # listener is gone
                client.search("imclone")

    def test_no_accepted_ingest_is_lost(self, tmp_path):
        """Every ingest the draining server acknowledged is on disk."""
        path = str(tmp_path / "archive")
        engine, handle = open_archive(path, create=ARCHIVE_CONFIG, shards=2)
        engine.index_batch([f"seed record {i}" for i in range(4)])
        handle.close()

        engine, handle = open_archive(path)
        service = ArchiveService(engine, handle, config=FAST)
        server = ArchiveServer(service).start()
        accepted, rejected = [], []
        barrier = threading.Barrier(5)

        def ingester(worker: int):
            with HTTPTransport(server.endpoint, timeout=5.0) as client:
                barrier.wait()
                for attempt in range(10):
                    try:
                        ids = client.index_batch(
                            [f"drainproof w{worker} a{attempt}"]
                        )
                        accepted.extend(ids)
                    except ServiceClientError as exc:
                        rejected.append(exc)
                        return

        workers = [
            threading.Thread(target=ingester, args=(w,)) for w in range(4)
        ]
        for worker in workers:
            worker.start()
        barrier.wait()  # drain lands while ingests are in flight
        server.drain()
        for worker in workers:
            worker.join(timeout=10.0)

        # Acknowledged IDs are unique and, after reopening the archive
        # from disk, every one of them is committed and searchable.
        assert len(accepted) == len(set(accepted))
        engine, handle = open_archive(path)
        try:
            assert len(engine.documents) == 4 + len(accepted)
            found = {
                hit.doc_id for hit in engine.search("drainproof", top_k=100)
            }
            assert found == set(accepted)
        finally:
            handle.close()


class TestBackgroundSealer:
    TAIL_CONFIG = replace(SMALL_CONFIG, tail_max_docs=100, merge_at_segments=None)

    def test_sealer_freezes_tail_while_serving(self):
        """The sealer thread turns tail docs into segments behind live
        traffic, and searches stay correct throughout."""
        engine = build_engine(config=self.TAIL_CONFIG, batch=True)
        config = ServiceConfig(request_timeout=2.0, seal_interval=0.05)
        with ArchiveServer(
            ArchiveService(engine, config=config)
        ) as srv, HTTPTransport(srv.endpoint) as client:
            sealer = srv._sealer
            assert sealer is not None and sealer.is_alive()
            client.index_batch(["quagga sighting report"])
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if engine.segments_info()["segments"]:
                    break
                time.sleep(0.02)
            else:  # pragma: no cover - diagnostic
                pytest.fail("sealer never produced a segment")
            assert srv.sealer_error is None
            # Sealed docs answer exactly as before.
            assert client.search("imclone")
            assert [h.doc_id for h in client.search("quagga")] == [
                len(DEFAULT_CORPUS)
            ]
        assert not sealer.is_alive()  # drain joined the sealer

    def test_no_sealer_without_tail_or_interval(self):
        # Legacy engine: interval set but nothing to seal.
        config = ServiceConfig(request_timeout=2.0, seal_interval=0.05)
        with ArchiveServer(
            ArchiveService(build_engine(batch=True), config=config)
        ) as srv:
            assert srv._sealer is None
        # Tail engine with the sealer disabled (default interval).
        engine = build_engine(config=self.TAIL_CONFIG, batch=True)
        with ArchiveServer(ArchiveService(engine, config=FAST)) as srv:
            assert srv._sealer is None
            assert engine.segments_info()["tail_docs"] == len(DEFAULT_CORPUS)


class TestWarmServiceLatency:
    def test_warm_search_beats_cold_open_per_query(self, tmp_path):
        """The reason the service exists: open once, not once per query."""
        path = str(tmp_path / "archive")
        engine, handle = open_archive(path, create=ARCHIVE_CONFIG)
        engine.index_batch(
            [f"imclone filing {i} with assorted padding terms" for i in range(60)]
        )
        handle.close()

        warm = []
        with ArchiveServer(
            ArchiveService(*open_archive(path), config=FAST)
        ) as srv, HTTPTransport(srv.endpoint) as client:
            client.search("imclone")  # connection + cache warmup
            for _ in range(10):
                started = time.perf_counter()
                assert client.search("imclone", top_k=10)
                warm.append(time.perf_counter() - started)

        cold = []
        for _ in range(3):
            started = time.perf_counter()
            engine, handle = open_archive(path)
            assert engine.search("imclone", top_k=10)
            handle.close()
            cold.append(time.perf_counter() - started)

        warm_median = sorted(warm)[len(warm) // 2]
        cold_median = sorted(cold)[len(cold) // 2]
        assert warm_median < cold_median, (
            f"warm {warm_median * 1e3:.2f} ms !< cold {cold_median * 1e3:.2f} ms"
        )
