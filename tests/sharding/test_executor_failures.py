"""Shard failures during parallel query fan-out.

A query fans out to every shard on a thread pool; when one shard raises,
the executor must cancel the sibling futures that have not started,
preserve the exception type (``TamperDetectedError`` handling upstream
depends on it), and attach the failing shard's index.
"""

import pytest

from repro.errors import TamperDetectedError
from repro.search.engine import EngineConfig
from repro.sharding import ShardedSearchEngine

CONFIG = EngineConfig(num_lists=16, block_size=4096, branching=None)


@pytest.fixture()
def engine():
    engine = ShardedSearchEngine(CONFIG, num_shards=3)
    for i in range(12):
        engine.index_document(f"compliance memo number{i} shared")
    with engine:
        yield engine


class _RecordingFuture:
    """Wraps a real future; records whether cancel() was attempted."""

    def __init__(self, future):
        self._future = future
        self.cancel_attempts = 0

    def result(self, timeout=None):
        return self._future.result(timeout)

    def cancel(self):
        self.cancel_attempts += 1
        return self._future.cancel()


class _RecordingPool:
    """Wraps the fan-out pool so tests can observe future cancellation."""

    def __init__(self, pool):
        self._pool = pool
        self.futures = []

    def submit(self, fn, *args, **kwargs):
        future = _RecordingFuture(self._pool.submit(fn, *args, **kwargs))
        self.futures.append(future)
        return future

    def shutdown(self, wait=True):
        self._pool.shutdown(wait=wait)


class TestShardFailurePropagation:
    def test_exception_carries_failing_shard_index(self, engine):
        def boom(query):
            raise RuntimeError("disk gone")

        engine.shards[1].match = boom
        with pytest.raises(RuntimeError, match="disk gone") as excinfo:
            engine.search("shared", verify=False)
        assert excinfo.value.shard_index == 1

    def test_exception_type_is_preserved(self, engine):
        def tampered(query):
            raise TamperDetectedError(
                "posting list CRC mismatch",
                location="shard 2",
                invariant="posting-crc",
            )

        engine.shards[2].match = tampered
        # Callers catching TamperDetectedError specifically (incident
        # handling, audits) must keep working across the fan-out.
        with pytest.raises(TamperDetectedError) as excinfo:
            engine.search("shared", verify=False)
        assert excinfo.value.shard_index == 2
        assert excinfo.value.invariant == "posting-crc"

    def test_sibling_futures_are_cancelled(self, engine):
        def boom(query):
            raise RuntimeError("shard 0 down")

        engine.shards[0].match = boom
        executor = engine.executor
        executor._pool = _RecordingPool(executor.pool)
        with pytest.raises(RuntimeError):
            engine.search("shared", verify=False)
        pool = executor._pool
        assert len(pool.futures) == 3
        # Every outstanding future got a cancellation attempt (including
        # the failed one — cancelling a done future is a cheap no-op).
        assert all(f.cancel_attempts == 1 for f in pool.futures)

    def test_healthy_queries_still_work_after_a_failure(self, engine):
        original = engine.shards[1].match

        def flaky(query):
            raise RuntimeError("transient")

        engine.shards[1].match = flaky
        with pytest.raises(RuntimeError):
            engine.search("shared", verify=False)
        engine.shards[1].match = original
        results = engine.search("shared", verify=False, top_k=20)
        assert len(results) == 12

    def test_single_shard_engine_raises_without_pool(self):
        engine = ShardedSearchEngine(CONFIG, num_shards=1)
        engine.index_document("solo doc")

        def boom(query):
            raise RuntimeError("no pool involved")

        engine.shards[0].match = boom
        with engine, pytest.raises(RuntimeError, match="no pool involved"):
            engine.search("doc", verify=False)
