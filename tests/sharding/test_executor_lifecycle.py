"""Executor lifecycle: close is idempotent, reuse-after-close errors.

Before the explicit closed state, ``ParallelQueryExecutor.close()`` set
``_pool = None`` and the lazy ``pool`` property silently respawned a
fresh pool on the next query — resurrecting an executor its owner had
already released, and leaking the new pool (the owner never closes
twice).  Both executors now refuse queries after close and tolerate
repeated closes.
"""

import pytest

from repro.errors import WorkloadError
from repro.search.engine import EngineConfig
from repro.sharding.engine import ShardedSearchEngine
from repro.sharding.executor import ProcessShardExecutor


@pytest.fixture
def sharded():
    engine = ShardedSearchEngine(
        EngineConfig(num_lists=16, block_size=4096, branching=None),
        num_shards=2,
    )
    engine.index_batch(["alpha beta", "beta gamma", "gamma alpha"])
    yield engine
    engine.close()


class TestThreadExecutorLifecycle:
    def test_close_is_idempotent(self, sharded):
        sharded.executor.close()
        sharded.executor.close()
        assert sharded.executor.closed

    def test_search_after_close_raises(self, sharded):
        assert sharded.search("beta", top_k=5)
        sharded.close()
        with pytest.raises(WorkloadError, match="closed"):
            sharded.search("beta", top_k=5)

    def test_pool_property_after_close_raises(self, sharded):
        sharded.executor.close()
        with pytest.raises(WorkloadError, match="closed"):
            sharded.executor.pool

    def test_pool_not_respawned_by_close_close(self, sharded):
        # Trigger lazy pool creation, close, and verify no pool returns.
        sharded.search("alpha", top_k=5)
        sharded.executor.close()
        assert sharded.executor._pool is None

    def test_engine_context_manager_closes_executor(self):
        with ShardedSearchEngine(
            EngineConfig(num_lists=16, block_size=4096, branching=None),
            num_shards=2,
        ) as engine:
            engine.index_batch(["alpha beta"])
        assert engine.executor.closed


class TestProcessExecutorLifecycle:
    """Mirror of the thread-executor contract (no workers spawned)."""

    def make(self, tmp_path):
        engine = ShardedSearchEngine(
            EngineConfig(num_lists=16, block_size=4096, branching=None),
            num_shards=2,
            executor="process",
            shard_paths=[str(tmp_path / "s0"), str(tmp_path / "s1")],
        )
        assert isinstance(engine.executor, ProcessShardExecutor)
        return engine

    def test_close_is_idempotent(self, tmp_path):
        engine = self.make(tmp_path)
        engine.executor.close()
        engine.executor.close()
        assert engine.executor.closed

    def test_search_after_close_raises(self, tmp_path):
        engine = self.make(tmp_path)
        engine.close()
        with pytest.raises(WorkloadError, match="closed"):
            engine.search("beta", top_k=5)

    def test_constructor_validation(self):
        config = EngineConfig(num_lists=16, block_size=4096, branching=None)
        with pytest.raises(WorkloadError, match="shard_paths"):
            ShardedSearchEngine(config, num_shards=2, executor="process")
        with pytest.raises(WorkloadError, match="2 shard paths for 3 shards"):
            ShardedSearchEngine(
                config,
                num_shards=3,
                executor="process",
                shard_paths=["a", "b"],
            )
        with pytest.raises(WorkloadError, match="executor"):
            ShardedSearchEngine(config, num_shards=2, executor="fiber")
