"""Process-level shard fan-out: equivalence with the thread executor.

The process executor must be a drop-in replacement for the thread
executor over the same committed state: same results, same scores, same
aggregated-statistics arithmetic.  Workers reopen the shard journals in
their own interpreters, so these tests build small file-backed archives
through :func:`repro.cli.open_archive`.
"""

import pytest

from repro.cli import open_archive
from repro.errors import ReproError
from repro.search.engine import EngineConfig

DOCS = [
    "regulatory compliant record retention policy",
    "keyword search over worm storage devices",
    "trustworthy record keeping for compliance audits",
    "fast posting decode and bulk scoring",
    "the quick brown fox jumped over the records",
    "retention horizon disposal of expired records",
    "compliance officers search retention records",
    "storage device firmware enforces write once",
]

QUERIES = [
    "record retention",
    "compliance",
    "storage device",
    "+retention +records",
    "search keyword storage",
]


@pytest.fixture
def archive(tmp_path):
    """A 3-shard file-backed archive with committed documents."""
    path = str(tmp_path / "archive.worm")
    engine, handle = open_archive(
        path,
        create=EngineConfig(num_lists=32, block_size=4096, branching=None),
        shards=3,
    )
    engine.index_batch(DOCS * 3)
    handle.close()
    return path


class TestEquivalence:
    def test_process_results_equal_thread_results(self, archive):
        thread_engine, thread_handle = open_archive(archive)
        process_engine, process_handle = open_archive(archive, executor="process")
        try:
            assert process_engine.executor_kind == "process"
            for query in QUERIES:
                expected = thread_engine.search(query, top_k=10)
                actual = process_engine.search(query, top_k=10)
                assert actual == expected, query
        finally:
            thread_handle.close()
            process_handle.close()

    def test_aggregate_stats_match(self, archive):
        thread_engine, thread_handle = open_archive(archive)
        process_engine, process_handle = open_archive(archive, executor="process")
        try:
            terms = ("retention", "records", "unseen-term")
            expected = thread_engine.executor.aggregate_term_stats(terms)
            actual = process_engine.executor.aggregate_term_stats(terms)
            assert actual == expected
        finally:
            thread_handle.close()
            process_handle.close()

    def test_verification_runs_on_process_results(self, archive):
        engine, handle = open_archive(archive, executor="process")
        try:
            results = engine.search("retention records", top_k=5, verify=True)
            assert results
        finally:
            handle.close()


class TestSnapshotSemantics:
    def test_refresh_picks_up_new_commits(self, archive):
        engine, handle = open_archive(archive, executor="process")
        try:
            before = engine.search("zanzibar", top_k=5)
            assert before == []
            engine.index_batch(["zanzibar retention zanzibar"])
            # Workers still serve the spawn-time snapshot ...
            assert engine.search("zanzibar", top_k=5) == []
            # ... until refreshed against the advanced journals.
            engine.executor.refresh()
            after = engine.search("zanzibar", top_k=5)
            assert len(after) == 1
        finally:
            handle.close()


class TestGuards:
    def test_single_shard_archive_rejected(self, tmp_path):
        path = str(tmp_path / "single.worm")
        _engine, handle = open_archive(
            path,
            create=EngineConfig(num_lists=16, block_size=4096, branching=None),
            shards=1,
        )
        handle.close()
        with pytest.raises(ReproError, match="sharded archive"):
            open_archive(path, executor="process")
