"""The shard router: stable placement and the WORM document map."""

import pytest

from repro.errors import TamperDetectedError, WorkloadError
from repro.sharding.router import MAP_FILE, ShardRouter, stable_shard
from repro.worm.storage import CachedWormStore


@pytest.fixture()
def store():
    return CachedWormStore(None, block_size=4096)


class TestStableShard:
    def test_deterministic(self):
        for global_id in range(200):
            assert stable_shard(global_id, 4) == stable_shard(global_id, 4)

    def test_in_range(self):
        for num_shards in (1, 2, 3, 7, 16):
            for global_id in range(100):
                assert 0 <= stable_shard(global_id, num_shards) < num_shards

    def test_not_round_robin(self):
        # An avalanche mix must not stripe consecutive IDs cyclically.
        placements = [stable_shard(g, 4) for g in range(64)]
        assert placements != [g % 4 for g in range(64)]

    def test_roughly_balanced(self):
        counts = [0] * 4
        for global_id in range(4000):
            counts[stable_shard(global_id, 4)] += 1
        for count in counts:
            assert 700 <= count <= 1300  # ~1000 +- 30%


class TestAssignment:
    def test_global_ids_dense(self, store):
        router = ShardRouter(store, 3)
        assignments = router.assign_many(50)
        assert [a.global_id for a in assignments] == list(range(50))

    def test_local_ids_monotonic_per_shard(self, store):
        router = ShardRouter(store, 3)
        assignments = router.assign_many(100)
        next_local = [0, 0, 0]
        for a in assignments:
            assert a.local_id == next_local[a.shard_id]
            next_local[a.shard_id] += 1

    def test_round_trip_lookup(self, store):
        router = ShardRouter(store, 4)
        for a in router.assign_many(60):
            assert router.to_local(a.global_id) == (a.shard_id, a.local_id)
            assert router.to_global(a.shard_id, a.local_id) == a.global_id

    def test_unknown_global_id_rejected(self, store):
        router = ShardRouter(store, 2)
        router.assign_many(3)
        assert not router.has(3)
        with pytest.raises(WorkloadError):
            router.to_local(3)

    def test_unmapped_local_gets_negative_synthetic_id(self, store):
        router = ShardRouter(store, 3)
        router.assign_many(10)
        synthetic = router.to_global(1, router.shard_size(1) + 5)
        assert synthetic < 0
        assert not router.has(synthetic)

    def test_synthetic_ids_unique(self, store):
        router = ShardRouter(store, 3)
        seen = set()
        for shard_id in range(3):
            for local_id in range(router.shard_size(shard_id), 20):
                seen.add(router.to_global(shard_id, local_id))
        assert len(seen) == sum(20 - router.shard_size(s) for s in range(3))

    def test_invalid_shard_count(self, store):
        with pytest.raises(WorkloadError):
            ShardRouter(store, 0)


class TestPersistence:
    def test_restore_from_worm_map(self, store):
        router = ShardRouter(store, 3)
        originals = router.assign_many(40)
        reopened = ShardRouter(store, 3)
        assert len(reopened) == 40
        for a in originals:
            assert reopened.to_local(a.global_id) == (a.shard_id, a.local_id)

    def test_verify_clean_map(self, store):
        router = ShardRouter(store, 3)
        router.assign_many(25)
        assert router.verify() == 25

    def test_restore_continues_assignment(self, store):
        ShardRouter(store, 2).assign_many(10)
        reopened = ShardRouter(store, 2)
        assert reopened.assign().global_id == 10


class TestTamperDetection:
    def test_wrong_shard_detected(self, store):
        router = ShardRouter(store, 3)
        router.assign_many(5)
        # Mala appends a map record routing the next document to a shard
        # other than the one its global ID hashes to.
        global_id = 5
        wrong = (stable_shard(global_id, 3) + 1) % 3
        store.open_file(MAP_FILE).append_record(
            f"{global_id} {wrong} 0\n".encode("ascii")
        )
        with pytest.raises(TamperDetectedError) as exc:
            ShardRouter(store, 3)
        assert exc.value.invariant == "doc-map-placement"

    def test_sparse_global_id_detected(self, store):
        router = ShardRouter(store, 2)
        router.assign_many(4)
        store.open_file(MAP_FILE).append_record(
            f"9 {stable_shard(9, 2)} 0\n".encode("ascii")
        )
        with pytest.raises(TamperDetectedError) as exc:
            ShardRouter(store, 2)
        assert exc.value.invariant == "doc-map-density"

    def test_local_id_gap_detected(self, store):
        router = ShardRouter(store, 2)
        router.assign_many(4)
        shard = stable_shard(4, 2)
        bogus_local = router.shard_size(shard) + 3
        store.open_file(MAP_FILE).append_record(
            f"4 {shard} {bogus_local}\n".encode("ascii")
        )
        with pytest.raises(TamperDetectedError) as exc:
            ShardRouter(store, 2)
        assert exc.value.invariant == "doc-map-local-monotonicity"

    def test_garbage_record_detected(self, store):
        router = ShardRouter(store, 2)
        router.assign_many(2)
        store.open_file(MAP_FILE).append_record(b"not a map record\n")
        with pytest.raises(TamperDetectedError) as exc:
            ShardRouter(store, 2)
        assert exc.value.invariant == "doc-map-format"

    def test_verify_flags_appended_tampering(self, store):
        router = ShardRouter(store, 2)
        router.assign_many(6)
        store.open_file(MAP_FILE).append_record(b"99 0 99\n")
        with pytest.raises(TamperDetectedError):
            router.verify()
