"""The sharded engine: equivalence, batching, and trust properties."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.attacks import posting_stuffing_attack
from repro.adversary.detection import full_sharded_audit
from repro.errors import TamperDetectedError, WorkloadError
from repro.search.engine import EngineConfig
from repro.search.profiling import profile_sharded_query
from repro.sharding import ShardedSearchEngine
from repro.worm.storage import CachedWormStore
from tests.helpers import SHARD_CONFIG, build_engine_pair

CONFIG = SHARD_CONFIG

VOCAB = [f"term{i}" for i in range(12)]

documents = st.lists(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=8).map(" ".join),
    min_size=1,
    max_size=30,
)

queries = st.one_of(
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=3).map(" ".join),
    st.lists(st.sampled_from(VOCAB), min_size=1, max_size=3).map(
        lambda ts: " ".join(f"+{t}" for t in ts)
    ),
)


def build_engines(docs, num_shards):
    return build_engine_pair(docs, num_shards, config=CONFIG)


class TestEquivalence:
    """A K-shard archive answers exactly like a 1-shard archive."""

    @given(docs=documents, query=queries, num_shards=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_same_results_and_scores(self, docs, query, num_shards):
        single, sharded = build_engines(docs, num_shards)
        try:
            expected = single.search(query, top_k=len(docs) + 1)
            got = sharded.search(query, top_k=len(docs) + 1)
            assert {r.doc_id for r in got} == {r.doc_id for r in expected}
            by_id = {r.doc_id: r.score for r in got}
            for r in expected:
                # Scores agree to float-sum reassociation error: each
                # shard accumulates the same statistics in its own order.
                assert by_id[r.doc_id] == pytest.approx(r.score, abs=1e-9)
        finally:
            sharded.close()

    @given(docs=documents, query=queries)
    @settings(max_examples=20, deadline=None)
    def test_single_shard_is_exactly_the_engine(self, docs, query):
        single, sharded = build_engines(docs, num_shards=1)
        try:
            expected = [
                (r.doc_id, r.score) for r in single.search(query, top_k=50)
            ]
            got = [
                (r.doc_id, r.score) for r in sharded.search(query, top_k=50)
            ]
            assert got == expected
        finally:
            sharded.close()

    def test_ranked_order_deterministic(self):
        docs = ["alpha beta", "alpha alpha beta", "beta gamma", "alpha"]
        single, sharded = build_engines(docs, num_shards=3)
        with sharded:
            expected = [r.doc_id for r in single.search("alpha beta")]
            assert [r.doc_id for r in sharded.search("alpha beta")] == expected

    def test_time_range_filter_respected(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=3)
        with sharded:
            sharded.index_batch([f"common doc{i}" for i in range(9)])
            hits = sharded.search("common @3..5", top_k=20)
            docs = {r.doc_id for r in hits}
            assert docs == {3, 4, 5}


class TestIngest:
    def test_global_ids_dense_in_input_order(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=4)
        with sharded:
            ids = sharded.index_batch([f"doc {i}" for i in range(17)])
            assert ids == list(range(17))
            ids2 = sharded.index_document("one more")
            assert ids2 == 17

    def test_batched_ingest_io_matches_single_doc_ingest(self):
        docs = [f"term{i % 7} term{(i * 3) % 7} filler" for i in range(24)]
        one_at_a_time = ShardedSearchEngine(CONFIG, num_shards=3)
        for doc in docs:
            one_at_a_time.index_document(doc)
        batched = ShardedSearchEngine(CONFIG, num_shards=3)
        batched.index_batch(docs)
        try:
            for lone, grouped in zip(one_at_a_time.shards, batched.shards):
                assert grouped.store.io.block_writes == (
                    lone.store.io.block_writes
                )
                assert grouped.store.io.block_reads == (
                    lone.store.io.block_reads
                )
        finally:
            one_at_a_time.close()
            batched.close()

    def test_commit_times_validated(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=2)
        with sharded:
            sharded.index_batch(["a b", "c d"], commit_times=[5, 9])
            with pytest.raises(WorkloadError):
                sharded.index_batch(["late"], commit_times=[7])

    def test_commit_time_length_mismatch_rejected(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=2)
        with sharded:
            with pytest.raises(WorkloadError):
                sharded.index_batch(["a", "b"], commit_times=[1])

    def test_buffered_ingestor_flushes_at_batch_size(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=2, batch_size=3)
        with sharded:
            for i in range(5):
                sharded.ingestor.add(f"buffered doc {i}")
            assert sharded.ingestor.pending == 2  # 3 auto-flushed
            sharded.ingestor.flush()
            assert sharded.ingestor.pending == 0
            assert len(sharded.documents) == 5

    def test_document_view_round_trip(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=3)
        with sharded:
            texts = [f"payload number {i}" for i in range(11)]
            ids = sharded.index_batch(texts)
            for global_id, text in zip(ids, texts):
                doc = sharded.documents.get(global_id)
                assert doc.doc_id == global_id
                assert doc.text == text


class TestTrust:
    def test_per_shard_jump_tampering_detected(self):
        from repro.adversary.attacks import block_jump_pointer_attack

        config = EngineConfig(num_lists=1, block_size=512, branching=2)
        sharded = ShardedSearchEngine(config, num_shards=2)
        with sharded:
            # Enough postings that each shard's single merged list spans
            # multiple blocks, so a planted pointer is plausible.
            sharded.index_batch([f"alpha beta doc{i}" for i in range(60)])
            shard = sharded.shards[0]
            jump = shard._jumps[0]
            block_jump_pointer_attack(jump, target_block=0)
            reports = full_sharded_audit(sharded)
            bad = [r for r in reports if not r.ok]
            assert bad
            assert all(r.subject.startswith("shard 0") for r in bad)

    def test_stuffed_shard_fails_verified_search(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=2)
        with sharded:
            sharded.index_batch([f"evidence doc{i}" for i in range(8)])
            shard = sharded.shards[1]
            tid = shard.term_id("evidence")
            posting_list = shard._lists[shard._list_id_for(tid)]
            posting_stuffing_attack(
                posting_list, tid, count=len(shard.documents) + 3
            )
            with pytest.raises(TamperDetectedError):
                sharded.search("evidence", top_k=50, verify=True)

    def test_incident_handling_quarantines_fabricated_ids(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=2)
        with sharded:
            sharded.index_batch([f"evidence doc{i}" for i in range(8)])
            shard = sharded.shards[1]
            tid = shard.term_id("evidence")
            posting_list = shard._lists[shard._list_id_for(tid)]
            stuffed = posting_stuffing_attack(
                posting_list, tid, count=len(shard.documents) + 3
            )
            fabricated = [s for s in stuffed if s >= len(shard.documents)]
            results, report = sharded.search_with_incident_handling(
                "evidence", top_k=50
            )
            assert not report.ok
            assert {r.doc_id for r in results} == set(range(8))
            quarantined = sharded.incidents.quarantined_doc_ids
            assert len([g for g in quarantined if g < 0]) == len(fabricated)
            # Quarantine persists: the second query returns clean results.
            again, _ = sharded.search_with_incident_handling(
                "evidence", top_k=50
            )
            assert {r.doc_id for r in again} == set(range(8))

    def test_map_tampering_fails_audit(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=2)
        with sharded:
            sharded.index_batch(["a b", "c d", "e f"])
            sharded.coordinator.open_file("shard/doc-map").append_record(
                b"99 0 99\n"
            )
            reports = full_sharded_audit(sharded)
            bad = [r for r in reports if not r.ok]
            assert [r.subject for r in bad] == ["shard document map"]

    def test_clean_archive_passes_audit(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=3)
        with sharded:
            sharded.index_batch([f"record doc{i}" for i in range(10)])
            assert all(r.ok for r in full_sharded_audit(sharded))


class TestRetention:
    def test_dispose_expired_returns_global_ids(self):
        config = EngineConfig(
            num_lists=64, block_size=4096, branching=None, retention_period=5
        )
        sharded = ShardedSearchEngine(config, num_shards=3)
        with sharded:
            sharded.index_batch([f"purge doc{i}" for i in range(7)])
            assert sharded.dispose_expired(now=100) == list(range(7))
            assert sharded.search("purge", top_k=20) == []
            # Disposition records vouch for the vanished documents.
            assert sharded.verify_results([0, 3], ["purge"]).ok


class TestTailMode:
    """Tail-mode shards answer exactly like legacy shards, and the
    seal/merge fan-out reaches every shard."""

    TAIL_CONFIG = replace(CONFIG, tail_max_docs=4, merge_at_segments=None)

    def test_sharded_tail_matches_sharded_legacy(self):
        docs = [f"term{i % 5} term{(i * 3) % 5} filing" for i in range(18)]
        legacy = ShardedSearchEngine(CONFIG, num_shards=3)
        tailed = ShardedSearchEngine(self.TAIL_CONFIG, num_shards=3)
        with legacy, tailed:
            legacy.index_batch(docs)
            tailed.index_batch(docs)
            tailed.seal_tail()
            tailed.index_batch(["term0 straggler"])
            legacy.index_batch(["term0 straggler"])
            for query in ("term0", "+term1 +term3", "filing @2..9"):
                expected = [
                    (r.doc_id, r.score)
                    for r in legacy.search(query, top_k=25)
                ]
                got = [
                    (r.doc_id, r.score)
                    for r in tailed.search(query, top_k=25)
                ]
                assert got == expected, query

    def test_seal_and_merge_fan_out(self):
        config = replace(CONFIG, tail_max_docs=100, merge_at_segments=None)
        sharded = ShardedSearchEngine(config, num_shards=3)
        with sharded:
            assert sharded.tail_enabled
            sharded.index_batch([f"fanout doc{i}" for i in range(9)])
            first = sharded.seal_tail()
            sharded.index_batch([f"fanout late{i}" for i in range(9)])
            second = sharded.seal_tail()
            assert len(first) == len(second) == 3
            merged = sharded.merge_segments()
            assert len(merged) == 3
            info = sharded.segments_info()
            assert info["tail_enabled"] is True
            assert info["tail_docs"] == 0
            assert len(info["shards"]) == 3
            # Doc conservation: every ingested doc is in some shard's
            # segments (nothing stranded, nothing duplicated).
            sealed = sum(
                record["doc_count"]
                for shard in info["shards"]
                for record in shard["segments"]
            )
            assert sealed == 18
            assert {r.doc_id for r in sharded.search("fanout", top_k=25)} == set(
                range(18)
            )

    def test_legacy_shards_refuse_tail_ops(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=2)
        with sharded:
            assert not sharded.tail_enabled
            with pytest.raises(WorkloadError):
                sharded.seal_tail()


class TestProfiling:
    def test_modeled_speedup_scales_with_shards(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=4)
        with sharded:
            sharded.index_batch(
                [f"common unique{i}" for i in range(64)]
            )
            profile = profile_sharded_query(sharded, "common")
            assert profile.shards == 4
            assert profile.total_entries_scanned == sum(
                p.entries_scanned for p in profile.per_shard
            )
            assert profile.critical_path_entries == max(
                p.entries_scanned for p in profile.per_shard
            )
            assert profile.modeled_speedup >= 1.5
            assert "4 shards" in profile.summary()


class TestConstruction:
    def test_invalid_shard_count_rejected(self):
        with pytest.raises(WorkloadError):
            ShardedSearchEngine(CONFIG, num_shards=0)

    def test_custom_stores_are_used(self):
        stores = [
            CachedWormStore(None, block_size=CONFIG.block_size)
            for _ in range(2)
        ]
        sharded = ShardedSearchEngine(
            CONFIG, num_shards=2, store_factory=lambda i: stores[i]
        )
        with sharded:
            sharded.index_batch(["hello world", "goodbye world"])
            assert any(s.device.total_bytes() for s in stores)

    def test_archive_stats_aggregates(self):
        sharded = ShardedSearchEngine(CONFIG, num_shards=3)
        with sharded:
            sharded.index_batch([f"stat doc{i}" for i in range(9)])
            stats = sharded.archive_stats()
            assert stats["shards"] == 3
            assert stats["documents"] == 9
            assert sum(stats["shard_documents"]) == 9
            assert stats["commit_log_records"] == 9
