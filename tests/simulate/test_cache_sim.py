"""Integration tests for the Figure 2 cache simulation."""

import numpy as np
import pytest

from repro.core.merge import UniformHashMerge
from repro.simulate.cache_sim import (
    analytic_merged_ios_per_doc,
    figure2_sweep,
    ios_per_doc_merged,
    ios_per_doc_unmerged,
)


class _Doc:
    def __init__(self, term_ids):
        self.term_ids = np.asarray(term_ids, dtype=np.int64)


class TestUnmerged:
    def test_ios_decrease_with_cache_size(self, tiny_workload):
        docs = tiny_workload.documents[:500]
        small = ios_per_doc_unmerged(docs, cache_size_bytes=1 << 20)
        large = ios_per_doc_unmerged(docs, cache_size_bytes=1 << 26)
        assert small > large

    def test_curve_levels_off_slowly(self, tiny_workload):
        """The Zipf-tail effect: doubling a big cache helps little."""
        docs = tiny_workload.documents[:800]
        series = figure2_sweep(
            docs, [1 << 21, 1 << 22, 1 << 23, 1 << 24, 1 << 25]
        )
        ios = [v for _, v in series]
        assert ios == sorted(ios, reverse=True)
        early_drop = ios[0] - ios[1]
        late_drop = ios[-2] - ios[-1]
        assert early_drop > late_drop

    def test_hand_computed_tiny_case(self):
        """2 docs, disjoint singleton terms, 1-block cache."""
        docs = [_Doc([0]), _Doc([1]), _Doc([0]), _Doc([1])]
        # block holds 16 postings at 128-byte blocks; cache = 1 block.
        ios = ios_per_doc_unmerged(docs, cache_size_bytes=128, block_size=128)
        # doc1: term0 new (no IO). doc2: evict term0 (write), term1 new...
        # pattern: every access after the first evicts (1 write) and the
        # re-fetches read (1 read for each revisit).
        assert ios == pytest.approx((1 + 2 + 2) / 4)


class TestMerged:
    def test_merging_into_cache_sized_lists_eliminates_reads(self, tiny_workload):
        docs = tiny_workload.documents[:500]
        cache_bytes = 1 << 21  # 256 blocks of 8 KB
        assignment = UniformHashMerge(256).assign(tiny_workload.vocabulary_size)
        merged = ios_per_doc_merged(docs, assignment, cache_size_bytes=cache_bytes)
        unmerged = ios_per_doc_unmerged(
            docs, cache_size_bytes=cache_bytes, block_size=8192
        )
        assert merged < unmerged / 5  # the paper's order-of-magnitude win

    def test_merged_converges_to_fill_rate(self, tiny_workload):
        """Section 3: I/O only when a block fills -> postings/p per doc.

        Blocks are sized small enough that every list rolls many blocks,
        so the fill-rate arithmetic dominates edge effects.
        """
        docs = tiny_workload.documents[:1000]
        assignment = UniformHashMerge(64).assign(tiny_workload.vocabulary_size)
        merged = ios_per_doc_merged(
            docs, assignment, cache_size_bytes=64 * 512, block_size=512
        )
        postings_per_doc = np.mean([d.num_distinct_terms for d in docs])
        expected = postings_per_doc / (512 // 8)
        assert merged == pytest.approx(expected, rel=0.35)


class TestAnalytic:
    def test_paper_arithmetic(self):
        """Section 2.3: 500 8-byte postings over 4 KB blocks ~ 1 I/O."""
        assert analytic_merged_ios_per_doc(500, block_size=4096) == pytest.approx(
            500 * 8 / 4096
        )
