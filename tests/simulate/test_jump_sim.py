"""Integration tests for the Figure 8(b)/8(c) simulations."""

import pytest

from repro.simulate.jump_sim import (
    build_merged_index,
    insert_ios_sweep,
    query_speedup_sweep,
)


@pytest.fixture(scope="module")
def docs(tiny_workload):
    return tiny_workload.documents[:800]


class TestBuildMergedIndex:
    def test_bundle_consistent(self, docs):
        bundle = build_merged_index(
            docs, num_lists=16, branching=4, block_size=1024, max_doc_bits=16
        )
        total_postings = sum(len(pl) for pl in bundle.lists.values())
        assert total_postings == sum(d.num_distinct_terms for d in docs)
        assert set(bundle.jumps) == set(bundle.lists)

    def test_plain_bundle_has_no_jumps(self, docs):
        bundle = build_merged_index(
            docs, num_lists=16, branching=None, block_size=1024
        )
        assert not bundle.jumps

    def test_scan_blocks_dedupes_shared_lists(self, docs):
        bundle = build_merged_index(
            docs, num_lists=1, branching=None, block_size=1024
        )
        one = bundle.scan_blocks_for_terms([0])
        two = bundle.scan_blocks_for_terms([0, 1])  # same single list
        assert one == two


class TestInsertIoSweep:
    def test_fig8b_shape(self, docs):
        """I/Os per doc fall with cache size; jump indexes cost more than
        plain appends at small caches and converge as the cache grows."""
        sweep = insert_ios_sweep(
            docs,
            num_lists=32,
            branchings=[None, 2, 32],
            cache_block_counts=[32, 64, 128, 512],
            block_size=1024,
            max_doc_bits=16,
        )
        for branching, series in sweep.items():
            ios = [v for _, v in series]
            assert ios == sorted(ios, reverse=True), branching
        plain_final = sweep[None][-1][1]
        b2_final = sweep[2][-1][1]
        b32_final = sweep[32][-1][1]
        # Converged jump-index cost approaches the plain append cost.
        assert b2_final < 3 * plain_final
        # Higher B sets more pointers: at the SMALL cache it costs more.
        assert sweep[32][0][1] > sweep[2][0][1]
        assert b32_final >= b2_final * 0.8

    def test_tail_path_ablation(self, docs):
        """Disabling the Section 4.5 optimization inflates insert I/O."""
        kwargs = dict(
            num_lists=32,
            branchings=[32],
            cache_block_counts=[48],
            block_size=1024,
            max_doc_bits=16,
        )
        with_opt = insert_ios_sweep(docs, track_tail_path=True, **kwargs)
        without = insert_ios_sweep(docs, track_tail_path=False, **kwargs)
        assert without[32][0][1] > with_opt[32][0][1]


class TestQuerySpeedupSweep:
    @pytest.fixture(scope="class")
    def result(self, tiny_workload):
        wl = tiny_workload
        queries = {n: wl.queries_with_terms(n, limit=8) for n in (2, 4, 7)}
        return query_speedup_sweep(
            wl.documents[:800],
            queries,
            wl.stats.ti,
            num_lists=16,
            branchings=(2, 32),
            block_size=4096,
            max_doc_bits=16,
        )

    def test_speedup_grows_with_terms(self, result):
        for label in ("B=2", "B=32"):
            speedups = dict(result.series[label])
            assert speedups[7] > speedups[2]

    def test_two_keyword_near_or_below_parity(self, result):
        """Paper: 2-keyword queries are ~10% slower with a jump index."""
        assert dict(result.series["B=32"])[2] < 1.15

    def test_ideal_unmerged_fastest(self, result):
        for n in (2, 4, 7):
            ideal = dict(result.series["unmerged"])[n]
            for label in ("B=2", "B=32"):
                assert ideal >= dict(result.series[label])[n]

    def test_blocks_bookkeeping(self, result):
        assert set(result.blocks) >= {"scan", "B=2", "B=32", "unmerged"}
        for label, by_terms in result.blocks.items():
            assert all(v >= 0 for v in by_terms.values())
