"""Integration tests for the Figure 3(c)-3(i) simulations."""

import pytest

from repro.core.epochs import prefix_query_frequencies, prefix_term_frequencies
from repro.simulate.merge_sim import (
    cost_ratio_sweep,
    figure3d_to_3g,
    figure3h,
    figure3i,
    strategy_for,
)
from repro.workloads.stats import WorkloadStats

CACHES = [1 << 22, 1 << 23, 1 << 24, 1 << 25, 1 << 26]


class TestCostRatioSweep:
    def test_ratio_decreases_with_cache(self, tiny_workload):
        series = cost_ratio_sweep(tiny_workload.stats, cache_sizes_bytes=CACHES)
        ratios = [r for _, r in series]
        assert all(r >= 1.0 for r in ratios)
        assert ratios == sorted(ratios, reverse=True)

    def test_modest_cache_near_unmerged(self, tiny_workload):
        """The paper's key Section 3.4 finding, at our scale."""
        series = cost_ratio_sweep(
            tiny_workload.stats, cache_sizes_bytes=[1 << 26]
        )
        assert series[0][1] < 1.1

    def test_popular_unmerged_helps_at_small_cache(self, tiny_workload):
        uniform = dict(
            cost_ratio_sweep(tiny_workload.stats, cache_sizes_bytes=[1 << 22])
        )
        popular = dict(
            cost_ratio_sweep(
                tiny_workload.stats,
                cache_sizes_bytes=[1 << 22],
                unmerged_terms=200,
                by="qi",
            )
        )
        assert popular[1 << 22] <= uniform[1 << 22]

    def test_panel_has_all_curves(self, tiny_workload):
        panel = figure3d_to_3g(
            tiny_workload.stats,
            cache_sizes_bytes=CACHES,
            unmerged_counts=(0, 100, 1000),
            by="ti",
        )
        assert set(panel) == {0, 100, 1000}
        assert all(len(curve) == len(CACHES) for curve in panel.values())


class TestLearning:
    def test_learned_stats_nearly_as_good(self, tiny_workload):
        """Figures 3(f)/3(g): prefix-learned stats change the ratio little."""
        wl = tiny_workload
        learned = WorkloadStats(
            ti=prefix_term_frequencies(wl.corpus, 0.1),
            qi=prefix_query_frequencies(wl.query_log, 0.1),
        )
        true_series = cost_ratio_sweep(
            wl.stats, cache_sizes_bytes=CACHES, unmerged_terms=200, by="qi"
        )
        learned_series = cost_ratio_sweep(
            wl.stats,
            cache_sizes_bytes=CACHES,
            unmerged_terms=200,
            by="qi",
            learned_stats=learned,
        )
        for (_, true_ratio), (_, learned_ratio) in zip(true_series, learned_series):
            assert learned_ratio == pytest.approx(true_ratio, rel=0.30, abs=0.3)


class TestStrategyFor:
    def test_zero_terms_is_uniform(self, tiny_workload):
        from repro.core.merge import UniformHashMerge

        assert isinstance(
            strategy_for(10, tiny_workload.stats, unmerged_terms=0, by="qi"),
            UniformHashMerge,
        )

    def test_too_many_popular_rejected(self, tiny_workload):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            strategy_for(10, tiny_workload.stats, unmerged_terms=10, by="qi")


class TestQueryDistributions:
    def test_figure3h_shapes(self, tiny_workload):
        wl = tiny_workload
        queries = [q.term_ids for q in wl.queries[:800]]
        dist = figure3h(
            queries, wl.stats, cache_sizes_bytes=[1 << 22, 1 << 25]
        )
        assert set(dist.sorted_costs) == {"unmerged", "4 MB", "32 MB"}
        # Merging inflates the cheap end most: compare low percentiles.
        assert dist.percentile("4 MB", 10) >= dist.percentile("unmerged", 10)
        # Expensive tail barely moves.
        tail_unmerged = dist.percentile("unmerged", 99)
        tail_merged = dist.percentile("32 MB", 99)
        assert tail_merged <= tail_unmerged * 3

    def test_figure3i_cheap_queries_slow_most(self, tiny_workload):
        wl = tiny_workload
        queries = [q.term_ids for q in wl.queries[:800]]
        series = figure3i(
            queries, wl.stats, cache_size_bytes=1 << 25, percentiles=range(0, 100, 10)
        )
        slowdowns = dict(series)
        assert slowdowns[0] > slowdowns[90]
        # Longest-running decile: no visible slowdown (paper: ~1.0).
        assert slowdowns[90] < 1.6
        assert all(v >= 1.0 for v in slowdowns.values())
