"""Unit tests for the report formatting helpers."""

from repro.simulate.report import format_series, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["cache", "ratio"], [(4, 1.25), (512, 1.0)], title="Fig 3(d)"
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 3(d)"
        assert "cache" in lines[1] and "ratio" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["x"], [(0.000123,), (12345.6,), (1.5,), (0.0,)])
        assert "0.000123" in out
        assert "1.23e+04" in out or "12345" in out.replace(",", "")
        assert "1.5" in out

    def test_no_title(self):
        out = format_table(["a"], [(1,)])
        assert out.splitlines()[0].strip() == "a"


class TestFormatSeries:
    def test_series(self):
        out = format_series(
            "curve", [1, 2], [0.5, 0.25], x_label="n", y_label="speedup"
        )
        assert out.splitlines()[0] == "curve"
        assert "speedup" in out
