"""Integration tests for the Figure 4 measured-runtime experiment."""


from repro.simulate.runtime import measured_runtime_ratio


class TestMeasuredRuntime:
    def test_ratio_reasonable_and_decreasing(self, tiny_workload):
        """Wall-clock measurement: assertions must tolerate timing noise
        (CI boxes, concurrent load), so the check uses repeated runs and
        generous bounds — the precise shape claims live in the FIG4
        benchmark, which runs on a quiet machine."""
        wl = tiny_workload
        sample = wl.queries[:150]
        ratios = [
            measured_runtime_ratio(
                wl.documents, sample, cache_size_bytes=size, repeats=3
            )
            for size in (1 << 22, 1 << 26)
        ]
        # Merged scans are in the same ballpark as unmerged (the merged
        # Q ratio at these caches is 1.0-1.7), and the small cache is not
        # dramatically *faster* than the big one.
        assert 0.4 < ratios[1] < 4.0
        assert ratios[0] >= ratios[1] * 0.5

    def test_single_point(self, tiny_workload):
        wl = tiny_workload
        ratio = measured_runtime_ratio(
            wl.documents[:500],
            wl.queries[:50],
            cache_size_bytes=1 << 24,
        )
        assert ratio > 0
