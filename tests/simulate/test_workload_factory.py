"""Unit tests for the shared workload factory."""

import numpy as np

from repro.simulate.workload_factory import Scale, get_workload


class TestScalePresets:
    def test_ordering(self):
        assert Scale.tiny().num_docs < Scale.small().num_docs
        assert Scale.small().num_docs < Scale.medium().num_docs
        assert Scale.paper().num_docs == 1_000_000  # the publication's size


class TestWorkload:
    def test_cached_identity(self, tiny_workload):
        again = get_workload(Scale.tiny())
        assert again is tiny_workload

    def test_consistent_stats(self, tiny_workload):
        wl = tiny_workload
        manual_ti = np.zeros(wl.vocabulary_size, dtype=np.int64)
        for doc in wl.documents[:100]:
            manual_ti[doc.term_ids] += 1
        full_ti = wl.stats.ti
        assert (manual_ti <= full_ti).all()
        assert full_ti.sum() == sum(d.num_distinct_terms for d in wl.documents)

    def test_positive_rank_correlation(self, tiny_workload):
        """The Section 3.3 observation the generators must reproduce."""
        assert tiny_workload.stats.rank_correlation() > 0.2

    def test_queries_with_exact_terms(self, tiny_workload):
        for n in (2, 5, 7):
            queries = tiny_workload.queries_with_terms(n, limit=10)
            assert len(queries) == 10
            assert all(q.num_terms == n for q in queries)
            assert all(len(set(q.term_ids)) == n for q in queries)

    def test_queries_with_terms_deterministic(self, tiny_workload):
        a = [q.term_ids for q in tiny_workload.queries_with_terms(6, limit=5)]
        b = [q.term_ids for q in tiny_workload.queries_with_terms(6, limit=5)]
        assert a == b
