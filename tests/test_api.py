"""Public API surface tests: the names README and examples rely on."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_quickstart_docstring_flow(self):
        """The module docstring's example, executed."""
        engine = repro.TrustworthySearchEngine()
        doc_id = engine.index_document(
            "imclone trading memo for stewart and waksal"
        )
        assert doc_id == 0
        assert [hit.doc_id for hit in engine.search("+stewart +waksal")] == [0]

    def test_key_types_importable_from_root(self):
        assert repro.JumpIndex is not None
        assert repro.BlockJumpIndex is not None
        assert repro.CommitTimeIndex is not None
        assert repro.EpochedSearchEngine is not None
        assert issubclass(repro.TamperDetectedError, repro.ReproError)
        assert issubclass(repro.WormViolationError, repro.ReproError)

    def test_subpackages_importable(self):
        import repro.adversary
        import repro.baselines
        import repro.core
        import repro.search
        import repro.simulate
        import repro.workloads
        import repro.worm

        assert repro.worm.WormDevice is repro.WormDevice
