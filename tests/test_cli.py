"""Integration tests for the archive CLI."""

import pytest

from repro.cli import main, open_archive


@pytest.fixture()
def archive(tmp_path):
    return str(tmp_path / "records.worm")


def run(*argv):
    return main(list(argv))


class TestInit:
    def test_init_creates_archive(self, archive, capsys):
        assert run("init", "--archive", archive, "--num-lists", "32") == 0
        assert "initialized archive" in capsys.readouterr().out

    def test_double_init_rejected(self, archive, capsys):
        run("init", "--archive", archive)
        assert run("init", "--archive", archive) == 2
        assert "already initialized" in capsys.readouterr().err

    def test_branching_zero_disables_jump_index(self, archive):
        run("init", "--archive", archive, "--branching", "0")
        engine, device = open_archive(archive)
        assert engine.config.branching is None
        device.close()

    def test_config_persisted(self, archive):
        run(
            "init", "--archive", archive,
            "--num-lists", "64", "--retention", "500",
        )
        engine, device = open_archive(archive)
        assert engine.config.num_lists == 64
        assert engine.config.retention_period == 500
        device.close()


class TestIndexAndSearch:
    def test_round_trip(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "32")
        assert (
            run(
                "index", "--archive", archive,
                "--text", "imclone trading memo for stewart",
                "--text", "quarterly finance audit",
            )
            == 0
        )
        capsys.readouterr()
        assert run("search", "--archive", archive, "imclone") == 0
        out = capsys.readouterr().out
        assert "doc 0" in out
        assert "imclone trading memo" in out

    def test_conjunctive_query(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "32")
        run(
            "index", "--archive", archive,
            "--text", "stewart imclone", "--text", "stewart only",
        )
        capsys.readouterr()
        run("search", "--archive", archive, "+stewart +imclone")
        out = capsys.readouterr().out
        assert "doc 0" in out and "doc 1" not in out

    def test_index_from_files(self, archive, tmp_path, capsys):
        run("init", "--archive", archive)
        doc = tmp_path / "memo.txt"
        doc.write_text("retention policy memo")
        assert run("index", "--archive", archive, str(doc)) == 0
        capsys.readouterr()
        run("search", "--archive", archive, "retention")
        assert "doc 0" in capsys.readouterr().out

    def test_index_nothing_errors(self, archive, capsys):
        run("init", "--archive", archive)
        assert run("index", "--archive", archive) == 2

    def test_no_results(self, archive, capsys):
        run("init", "--archive", archive)
        run("index", "--archive", archive, "--text", "something")
        capsys.readouterr()
        run("search", "--archive", archive, "nonexistentterm")
        assert "no results" in capsys.readouterr().out

    def test_uninitialized_archive_rejected(self, archive, capsys):
        assert run("search", "--archive", archive, "anything") == 2


class TestSegments:
    def test_tail_config_round_trips(self, archive):
        run(
            "init", "--archive", archive,
            "--tail-max-docs", "4", "--seal-strategy", "popular",
            "--seal-popular", "3", "--merge-at", "0",
        )
        engine, device = open_archive(archive)
        assert engine.config.tail_max_docs == 4
        assert engine.config.seal_strategy == "popular"
        assert engine.config.seal_popular_terms == 3
        assert engine.config.merge_at_segments is None
        device.close()

    def test_seal_merge_and_report(self, archive, capsys):
        run("init", "--archive", archive, "--tail-max-docs", "100")
        run(
            "index", "--archive", archive,
            "--text", "alpha memo", "--text", "beta memo",
        )
        capsys.readouterr()
        assert run("segments", "--archive", archive) == 0
        assert "tail: 2 docs" in capsys.readouterr().out
        assert run("segments", "--archive", archive, "--seal") == 0
        capsys.readouterr()
        run("index", "--archive", archive, "--text", "gamma memo")
        capsys.readouterr()
        assert run("segments", "--archive", archive, "--seal", "--merge") == 0
        out = capsys.readouterr().out
        assert "merged live segments" in out
        # Searches span segments after all of it.
        run("search", "--archive", archive, "memo")
        out = capsys.readouterr().out
        assert "doc 0" in out and "doc 2" in out

    def test_segments_rejects_legacy_archive(self, archive, capsys):
        run("init", "--archive", archive)
        assert run("segments", "--archive", archive) == 2
        assert "not in tail mode" in capsys.readouterr().err


class TestAuditAndDispose:
    def test_clean_audit(self, archive, capsys):
        run("init", "--archive", archive)
        run("index", "--archive", archive, "--text", "clean memo")
        capsys.readouterr()
        assert run("audit", "--archive", archive) == 0
        assert "0 with violations" in capsys.readouterr().out

    def test_audit_detects_stuffing_via_verify_search(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "8")
        run("index", "--archive", archive, "--text", "imclone memo")
        # Stuff the archive out-of-band (Mala with filesystem access to
        # the WORM box API).
        engine, device = open_archive(archive)
        from repro.adversary.attacks import posting_stuffing_attack

        tid = engine.term_id("imclone")
        posting_stuffing_attack(
            engine._existing_list(engine._list_id_for(tid)), tid, count=3
        )
        device.close()
        capsys.readouterr()
        assert run("search", "--archive", archive, "imclone", "--verify") == 0
        captured = capsys.readouterr()
        assert "tampering detected" in captured.err.lower()
        # The quarantine is durable: the next verify run is clean.
        assert run("search", "--archive", archive, "imclone", "--verify") == 0
        captured = capsys.readouterr()
        assert "tampering" not in captured.err.lower()

    def test_stats_subcommand(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "8")
        run("index", "--archive", archive, "--text", "imclone memo")
        capsys.readouterr()
        assert run("stats", "--archive", archive) == 0
        out = capsys.readouterr().out
        assert "documents  1" in out
        assert "jump_index" in out
        assert "device_bytes" in out

    def test_profile_subcommand(self, archive, capsys, tmp_path):
        run("init", "--archive", archive, "--num-lists", "8")
        run(
            "index", "--archive", archive,
            "--text", "imclone stewart memo", "--text", "imclone audit",
        )
        log = tmp_path / "queries.txt"
        log.write_text("imclone\n+imclone +stewart\n")
        capsys.readouterr()
        assert run(
            "profile", "--archive", archive, "--query-file", str(log)
        ) == 0
        out = capsys.readouterr().out
        assert "disjunctive" in out
        assert "conjunctive" in out
        assert "jump index" in out  # the recommendation line

    def test_profile_nothing_errors(self, archive, capsys):
        run("init", "--archive", archive)
        assert run("profile", "--archive", archive) == 2

    def test_dispose_lifecycle(self, archive, capsys):
        run("init", "--archive", archive, "--retention", "10")
        run(
            "index", "--archive", archive,
            "--text", "old record", "--commit-time", "0",
        )
        capsys.readouterr()
        assert run("dispose", "--archive", archive, "--now", "5") == 0
        assert "nothing past" in capsys.readouterr().out
        assert run("dispose", "--archive", archive, "--now", "50") == 0
        assert "disposed 1" in capsys.readouterr().out
        run("search", "--archive", archive, "record")
        assert "no results" in capsys.readouterr().out


class TestDisposeDurability:
    def test_dispose_accepts_durability_flags(self, archive, capsys):
        run("init", "--archive", archive, "--retention", "10")
        run(
            "index", "--archive", archive,
            "--text", "old record", "--commit-time", "0",
        )
        capsys.readouterr()
        assert run(
            "dispose", "--archive", archive, "--now", "50",
            "--fsync", "--group-commit", "4",
        ) == 0
        assert "disposed 1" in capsys.readouterr().out


class TestServeValidation:
    def test_out_of_range_port_rejected(self, archive, capsys):
        run("init", "--archive", archive)
        assert run("serve", "--archive", archive, "--port", "70000") == 2
        assert "--port" in capsys.readouterr().err

    def test_negative_rate_rejected(self, archive, capsys):
        run("init", "--archive", archive)
        assert run("serve", "--archive", archive, "--rate", "-1") == 2
        assert "--rate" in capsys.readouterr().err
