"""CLI error paths: every bad input exits 2 with a diagnostic, not a trace.

The happy paths live in test_cli.py; this module covers the failure
modes an operator actually hits — missing archives, malformed queries,
bad knob values, unreadable input files.
"""

import pytest

from repro.cli import main


def run(*argv):
    return main(list(argv))


@pytest.fixture()
def archive(tmp_path):
    """A small initialized archive with two documents committed."""
    path = str(tmp_path / "archive.worm")
    assert run("init", "--archive", path, "--num-lists", "32") == 0
    assert (
        run(
            "index",
            "--archive",
            path,
            "--text",
            "imclone trading memo",
            "--text",
            "quarterly finance audit",
        )
        == 0
    )
    return path


class TestMissingArchive:
    def test_search_uninitialized_path(self, tmp_path, capsys):
        path = str(tmp_path / "nope.worm")
        assert run("search", "--archive", path, "memo") == 2
        assert "not an initialized archive" in capsys.readouterr().err

    def test_stats_uninitialized_path(self, tmp_path):
        assert run("stats", "--archive", str(tmp_path / "nope.worm")) == 2

    def test_audit_uninitialized_path(self, tmp_path):
        assert run("audit", "--archive", str(tmp_path / "nope.worm")) == 2

    def test_double_init_rejected(self, archive, capsys):
        assert run("init", "--archive", archive) == 2
        assert "already initialized" in capsys.readouterr().err


class TestMalformedQuery:
    def test_mixed_mode_query(self, archive, capsys):
        assert run("search", "--archive", archive, "+imclone memo") == 2
        assert capsys.readouterr().err

    def test_empty_query(self, archive):
        assert run("search", "--archive", archive, "   ") == 2

    def test_bad_time_range(self, archive):
        assert run("search", "--archive", archive, "memo @9..3") == 2


class TestBadKnobs:
    def test_init_zero_shards(self, tmp_path, capsys):
        path = str(tmp_path / "a.worm")
        assert run("init", "--archive", path, "--shards", "0") == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_search_zero_cache_mb(self, archive, capsys):
        assert (
            run(
                "search", "--archive", archive, "memo",
                "--read-cache", "--cache-mb", "0",
            )
            == 2
        )
        assert "--cache-mb must be positive" in capsys.readouterr().err

    def test_search_negative_cache_mb(self, archive):
        assert (
            run(
                "search", "--archive", archive, "memo",
                "--read-cache", "--cache-mb", "-4",
            )
            == 2
        )

    def test_search_unknown_cache_policy(self, archive):
        # argparse rejects non-choices before our code runs.
        with pytest.raises(SystemExit) as exc:
            run(
                "search", "--archive", archive, "memo",
                "--read-cache", "--cache-policy", "arc",
            )
        assert exc.value.code == 2

    def test_search_zero_repeat(self, archive, capsys):
        assert (
            run("search", "--archive", archive, "memo", "--repeat", "0") == 2
        )
        assert "--repeat must be >= 1" in capsys.readouterr().err


class TestUnreadableFiles:
    def test_index_missing_file(self, archive, capsys):
        assert run("index", "--archive", archive, "/nonexistent/doc.txt") == 2
        assert "cannot read '/nonexistent/doc.txt'" in capsys.readouterr().err

    def test_index_nothing_to_index(self, archive, capsys):
        assert run("index", "--archive", archive) == 2
        assert "nothing to index" in capsys.readouterr().err

    def test_profile_missing_query_file(self, archive, capsys):
        assert (
            run(
                "profile", "--archive", archive,
                "--query-file", "/nonexistent/queries.txt",
            )
            == 2
        )
        assert "cannot read" in capsys.readouterr().err


class TestCacheHappyPathGuard:
    """The knobs that gate the error paths also work when valid."""

    @pytest.mark.parametrize("policy", ["lru", "2q", "slru"])
    def test_cached_search_all_policies(self, archive, capsys, policy):
        assert (
            run(
                "search", "--archive", archive, "memo",
                "--read-cache", "--cache-policy", policy,
                "--cache-mb", "2", "--repeat", "3",
            )
            == 0
        )
        assert "imclone" in capsys.readouterr().out


class TestLoadtestKnobs:
    def test_zero_clients(self, capsys):
        assert run("loadtest", "--clients", "0", "--duration", "1") == 2
        assert "--clients must be >= 1" in capsys.readouterr().err

    def test_zero_duration(self, capsys):
        assert run("loadtest", "--duration", "0") == 2
        assert "--duration must be positive" in capsys.readouterr().err

    def test_mix_out_of_range(self, capsys):
        assert run("loadtest", "--duration", "1", "--mix", "1.5") == 2
        assert "--mix must be in [0, 1]" in capsys.readouterr().err

    def test_zero_arrival_rate(self, capsys):
        assert run("loadtest", "--duration", "1", "--arrival-rate", "0") == 2
        assert "--arrival-rate must be positive" in capsys.readouterr().err

    def test_zero_shards(self, capsys):
        assert run("loadtest", "--duration", "1", "--shards", "0") == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_zero_docs(self, capsys):
        assert run("loadtest", "--duration", "1", "--docs", "0") == 2
        assert "--docs must be >= 1" in capsys.readouterr().err

    def test_compare_missing_baseline(self, tmp_path, capsys):
        missing = str(tmp_path / "no-baseline.json")
        assert (
            run(
                "loadtest", "--duration", "0.2", "--clients", "2",
                "--docs", "30", "--compare", missing,
            )
            == 2
        )
        assert "cannot read snapshot" in capsys.readouterr().err


class TestLoadtestHappyPath:
    def test_short_run_writes_a_snapshot(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_LOADTEST.json")
        assert (
            run(
                "loadtest", "--seed", "42", "--duration", "0.2",
                "--clients", "2", "--docs", "30", "--out", out,
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "load test (closed loop)" in captured.out
        assert "qps" in captured.out
        import json

        document = json.loads(open(out).read())
        assert document["schema"] == "repro-loadtest/v1"
        assert document["seed"] == 42
        assert document["metrics"]["errors"] == 0

    def test_self_compare_passes(self, tmp_path, capsys):
        out = str(tmp_path / "base.json")
        argv = (
            "loadtest", "--seed", "42", "--duration", "0.2",
            "--clients", "2", "--docs", "30",
        )
        assert run(*argv, "--out", out) == 0
        assert run(*argv, "--compare", out) == 0
        assert "within tolerance" in capsys.readouterr().out


class TestCapacityErrors:
    def test_bad_targets(self, tmp_path, capsys):
        snap = str(tmp_path / "snap.json")
        assert (
            run(
                "capacity", "--snapshot", snap,
                "--target-qps", "0", "--target-p99-ms", "10",
            )
            == 2
        )
        assert "--target-qps must be positive" in capsys.readouterr().err
        assert (
            run(
                "capacity", "--snapshot", snap,
                "--target-qps", "100", "--target-p99-ms", "-1",
            )
            == 2
        )

    def test_missing_snapshot(self, tmp_path, capsys):
        assert (
            run(
                "capacity", "--snapshot", str(tmp_path / "nope.json"),
                "--target-qps", "100", "--target-p99-ms", "10",
            )
            == 2
        )
        assert "cannot read snapshot" in capsys.readouterr().err

    def test_happy_path_from_generated_snapshot(self, tmp_path, capsys):
        snap = str(tmp_path / "snap.json")
        assert (
            run(
                "loadtest", "--seed", "42", "--duration", "0.2",
                "--clients", "2", "--docs", "30", "--out", snap,
            )
            == 0
        )
        capsys.readouterr()
        assert (
            run(
                "capacity", "--snapshot", snap,
                "--target-qps", "500", "--target-p99-ms", "20",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "provision" in out and "shard(s)" in out
