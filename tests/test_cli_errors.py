"""CLI error paths: every bad input exits 2 with a diagnostic, not a trace.

The happy paths live in test_cli.py; this module covers the failure
modes an operator actually hits — missing archives, malformed queries,
bad knob values, unreadable input files.
"""

import pytest

from repro.cli import main


def run(*argv):
    return main(list(argv))


@pytest.fixture()
def archive(tmp_path):
    """A small initialized archive with two documents committed."""
    path = str(tmp_path / "archive.worm")
    assert run("init", "--archive", path, "--num-lists", "32") == 0
    assert (
        run(
            "index",
            "--archive",
            path,
            "--text",
            "imclone trading memo",
            "--text",
            "quarterly finance audit",
        )
        == 0
    )
    return path


class TestMissingArchive:
    def test_search_uninitialized_path(self, tmp_path, capsys):
        path = str(tmp_path / "nope.worm")
        assert run("search", "--archive", path, "memo") == 2
        assert "not an initialized archive" in capsys.readouterr().err

    def test_stats_uninitialized_path(self, tmp_path):
        assert run("stats", "--archive", str(tmp_path / "nope.worm")) == 2

    def test_audit_uninitialized_path(self, tmp_path):
        assert run("audit", "--archive", str(tmp_path / "nope.worm")) == 2

    def test_double_init_rejected(self, archive, capsys):
        assert run("init", "--archive", archive) == 2
        assert "already initialized" in capsys.readouterr().err


class TestMalformedQuery:
    def test_mixed_mode_query(self, archive, capsys):
        assert run("search", "--archive", archive, "+imclone memo") == 2
        assert capsys.readouterr().err

    def test_empty_query(self, archive):
        assert run("search", "--archive", archive, "   ") == 2

    def test_bad_time_range(self, archive):
        assert run("search", "--archive", archive, "memo @9..3") == 2


class TestBadKnobs:
    def test_init_zero_shards(self, tmp_path, capsys):
        path = str(tmp_path / "a.worm")
        assert run("init", "--archive", path, "--shards", "0") == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_search_zero_cache_mb(self, archive, capsys):
        assert (
            run(
                "search", "--archive", archive, "memo",
                "--read-cache", "--cache-mb", "0",
            )
            == 2
        )
        assert "--cache-mb must be positive" in capsys.readouterr().err

    def test_search_negative_cache_mb(self, archive):
        assert (
            run(
                "search", "--archive", archive, "memo",
                "--read-cache", "--cache-mb", "-4",
            )
            == 2
        )

    def test_search_unknown_cache_policy(self, archive):
        # argparse rejects non-choices before our code runs.
        with pytest.raises(SystemExit) as exc:
            run(
                "search", "--archive", archive, "memo",
                "--read-cache", "--cache-policy", "arc",
            )
        assert exc.value.code == 2

    def test_search_zero_repeat(self, archive, capsys):
        assert (
            run("search", "--archive", archive, "memo", "--repeat", "0") == 2
        )
        assert "--repeat must be >= 1" in capsys.readouterr().err


class TestUnreadableFiles:
    def test_index_missing_file(self, archive, capsys):
        assert run("index", "--archive", archive, "/nonexistent/doc.txt") == 2
        assert "cannot read '/nonexistent/doc.txt'" in capsys.readouterr().err

    def test_index_nothing_to_index(self, archive, capsys):
        assert run("index", "--archive", archive) == 2
        assert "nothing to index" in capsys.readouterr().err

    def test_profile_missing_query_file(self, archive, capsys):
        assert (
            run(
                "profile", "--archive", archive,
                "--query-file", "/nonexistent/queries.txt",
            )
            == 2
        )
        assert "cannot read" in capsys.readouterr().err


class TestCacheHappyPathGuard:
    """The knobs that gate the error paths also work when valid."""

    @pytest.mark.parametrize("policy", ["lru", "2q", "slru"])
    def test_cached_search_all_policies(self, archive, capsys, policy):
        assert (
            run(
                "search", "--archive", archive, "memo",
                "--read-cache", "--cache-policy", policy,
                "--cache-mb", "2", "--repeat", "3",
            )
            == 0
        )
        assert "imclone" in capsys.readouterr().out
