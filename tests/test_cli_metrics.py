"""Integration tests for the CLI observability surface.

Covers the ``metrics`` subcommand, the ``query`` alias, ``--trace``
output, and the ``--metrics-json`` snapshot emitted by ``index`` and
``search``/``query``.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def archive(tmp_path):
    path = str(tmp_path / "records.worm")
    run("init", "--archive", path, "--num-lists", "32", "--shards", "2")
    return path


def run(*argv):
    return main(list(argv))


def _index_corpus(archive):
    run(
        "index", "--archive", archive,
        "--text", "imclone trading memo for stewart",
        "--text", "stewart waksal phone call",
        "--text", "quarterly finance audit",
    )


class TestMetricsSubcommand:
    def test_prometheus_text_on_stdout(self, archive, capsys):
        _index_corpus(archive)
        capsys.readouterr()
        assert run("metrics", "--archive", archive) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_store_block_reads_total counter" in out
        assert "# TYPE repro_cache_hit_rate gauge" in out
        assert 'shard="coordinator"' in out
        assert 'shard="0"' in out and 'shard="1"' in out
        assert out.endswith("\n")

    def test_json_flag_writes_snapshot(self, archive, tmp_path, capsys):
        _index_corpus(archive)
        out_path = tmp_path / "metrics.json"
        assert run("metrics", "--archive", archive, "--json", str(out_path)) == 0
        captured = capsys.readouterr()
        # stdout stays pure Prometheus text; the notice goes to stderr
        assert str(out_path) in captured.err
        assert "# TYPE" in captured.out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro-metrics/v1"
        assert doc["traces"] == []


class TestQueryAlias:
    def test_query_is_an_alias_for_search(self, archive, capsys):
        _index_corpus(archive)
        capsys.readouterr()
        assert run("query", "--archive", archive, "imclone") == 0
        assert "doc 0" in capsys.readouterr().out


class TestTraceFlag:
    def test_trace_prints_span_tree(self, archive, capsys):
        _index_corpus(archive)
        capsys.readouterr()
        assert run(
            "search", "--archive", archive, "+stewart +waksal", "--trace"
        ) == 0
        out = capsys.readouterr().out
        assert "doc 1" in out
        assert "trace '+stewart +waksal'" in out
        for stage in ("shard", "merge"):
            assert stage in out
        assert "queue_seconds=" in out

    def test_trace_emitted_even_without_matches(self, archive, capsys):
        _index_corpus(archive)
        capsys.readouterr()
        assert run(
            "search", "--archive", archive, "+no +hits", "--trace"
        ) == 0
        out = capsys.readouterr().out
        assert "no results" in out
        assert "trace '+no +hits'" in out


class TestMetricsJsonFlag:
    def test_index_writes_snapshot(self, archive, tmp_path):
        out_path = tmp_path / "ingest.json"
        run(
            "index", "--archive", archive,
            "--text", "alpha beta", "--metrics-json", str(out_path),
        )
        doc = json.loads(out_path.read_text())
        metrics = doc["metrics"]
        total = sum(
            s["value"]
            for s in metrics["repro_documents_indexed_total"]["series"]
        )
        assert total == 1
        assert "repro_ingest_batches_total" in metrics

    def test_query_snapshot_meets_acceptance_criteria(
        self, archive, tmp_path, capsys
    ):
        _index_corpus(archive)
        capsys.readouterr()
        out_path = tmp_path / "query.json"
        assert run(
            "query", "--archive", archive, "+stewart +waksal",
            "--metrics-json", str(out_path),
        ) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro-metrics/v1"
        metrics = doc["metrics"]

        # storage I/O counters, per shard
        reads = metrics["repro_store_block_reads_total"]["series"]
        assert {s["labels"]["shard"] for s in reads} >= {"0", "1"}

        # cache hit-rate
        rates = metrics["repro_cache_hit_rate"]["series"]
        assert all(0.0 <= s["value"] <= 1.0 for s in rates)

        # per-shard latency histograms from the executor
        runs = metrics["repro_shard_run_seconds"]["series"]
        assert {s["labels"]["shard"] for s in runs} == {"0", "1"}
        assert all(s["count"] == 1 for s in runs)
        assert "repro_shard_queue_seconds" in metrics

        # per-stage spans in the attached trace (sharded path: per-shard
        # execution spans plus the coordinator's global merge)
        (trace,) = doc["traces"]
        assert trace["query"] == "+stewart +waksal"
        names = [s["name"] for s in trace["spans"]]
        assert "shard" in names and "merge" in names
        shard_spans = [s for s in trace["spans"] if s["name"] == "shard"]
        assert {s["attrs"]["shard"] for s in shard_spans} == {0, 1}
        assert all("queue_seconds" in s["attrs"] for s in shard_spans)

    def test_snapshot_is_stable_json(self, archive, tmp_path, capsys):
        _index_corpus(archive)
        capsys.readouterr()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            run(
                "query", "--archive", archive, "imclone",
                "--metrics-json", str(path),
            )
        doc_a, doc_b = (json.loads(p.read_text()) for p in (a, b))
        # identical structure: same families, labels, and key order
        assert list(doc_a["metrics"]) == list(doc_b["metrics"])
        for name, family in doc_a["metrics"].items():
            other = doc_b["metrics"][name]
            assert family["type"] == other["type"]
            assert [s["labels"] for s in family["series"]] == [
                s["labels"] for s in other["series"]
            ]
