"""Integration tests for the CLI over a sharded archive."""

import os

import pytest

from repro.cli import main, open_archive
from repro.sharding import ShardedSearchEngine


@pytest.fixture()
def archive(tmp_path):
    return str(tmp_path / "records.worm")


def run(*argv):
    return main(list(argv))


def init_sharded(archive, shards=3):
    assert (
        run(
            "init", "--archive", archive,
            "--num-lists", "32", "--branching", "0",
            "--shards", str(shards),
        )
        == 0
    )


class TestShardedInit:
    def test_init_reports_shard_count(self, archive, capsys):
        init_sharded(archive, shards=4)
        assert "4 shards" in capsys.readouterr().out

    def test_shard_count_persisted(self, archive):
        init_sharded(archive, shards=3)
        engine, handle = open_archive(archive)
        try:
            assert isinstance(engine, ShardedSearchEngine)
            assert engine.num_shards == 3
        finally:
            handle.close()

    def test_default_is_unsharded(self, archive):
        assert run("init", "--archive", archive) == 0
        engine, handle = open_archive(archive)
        try:
            assert not isinstance(engine, ShardedSearchEngine)
        finally:
            handle.close()


class TestShardedRoundTrip:
    def test_index_creates_shard_journals(self, archive, capsys):
        init_sharded(archive, shards=2)
        assert (
            run(
                "index", "--archive", archive,
                "--text", "imclone trading memo",
                "--text", "martha stewart statement",
                "--text", "waksal family sale",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "committed doc 0" in out
        assert "committed doc 2" in out
        for shard_id in range(2):
            assert os.path.exists(f"{archive}.shard{shard_id:02d}")

    def test_search_spans_shards(self, archive, capsys):
        init_sharded(archive, shards=3)
        run(
            "index", "--archive", archive,
            "--text", "imclone trading memo",
            "--text", "imclone quarterly report",
            "--text", "unrelated finance audit",
        )
        capsys.readouterr()
        assert (
            run(
                "search", "--archive", archive, "imclone",
                "--workers", "2",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "doc 0" in out
        assert "doc 1" in out
        assert "doc 2" not in out

    def test_batch_size_flag(self, archive, capsys):
        init_sharded(archive, shards=2)
        texts = []
        for i in range(7):
            texts += ["--text", f"bulk document number {i}"]
        assert (
            run(
                "index", "--archive", archive, "--batch-size", "3", *texts
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("committed doc") == 7

    def test_verified_search_on_clean_archive(self, archive, capsys):
        init_sharded(archive)
        run("index", "--archive", archive, "--text", "imclone memo")
        capsys.readouterr()
        assert (
            run("search", "--archive", archive, "imclone", "--verify") == 0
        )
        assert "WARNING" not in capsys.readouterr().err


class TestShardedOps:
    def test_audit_covers_shards_and_map(self, archive, capsys):
        init_sharded(archive, shards=2)
        run(
            "index", "--archive", archive,
            "--text", "alpha beta", "--text", "gamma delta",
        )
        capsys.readouterr()
        assert run("audit", "--archive", archive) == 0
        assert "0 with violations" in capsys.readouterr().out

    def test_stats_reports_shard_layout(self, archive, capsys):
        init_sharded(archive, shards=3)
        run("index", "--archive", archive, "--text", "some record text")
        capsys.readouterr()
        assert run("stats", "--archive", archive) == 0
        out = capsys.readouterr().out
        assert "shards" in out
        assert "shard_documents" in out

    def test_profile_uses_sharded_profiler(self, archive, capsys):
        init_sharded(archive, shards=2)
        run(
            "index", "--archive", archive,
            "--text", "alpha beta", "--text", "alpha gamma",
        )
        capsys.readouterr()
        assert run("profile", "--archive", archive, "alpha") == 0
        assert "2 shards" in capsys.readouterr().out

    def test_dispose_across_shards(self, archive, capsys):
        assert (
            run(
                "init", "--archive", archive,
                "--branching", "0", "--shards", "2", "--retention", "5",
            )
            == 0
        )
        run(
            "index", "--archive", archive,
            "--text", "ephemeral one", "--text", "ephemeral two",
        )
        capsys.readouterr()
        assert run("dispose", "--archive", archive, "--now", "100") == 0
        assert "disposed 2" in capsys.readouterr().out
