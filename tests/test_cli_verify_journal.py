"""The ``verify-journal`` subcommand and the CLI durability knobs."""

import os

import pytest

from repro.cli import main, open_archive


@pytest.fixture()
def archive(tmp_path):
    return str(tmp_path / "records.worm")


def run(*argv):
    return main(list(argv))


def _flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestVerifyJournal:
    def test_clean_archive(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "32")
        run("index", "--archive", archive, "--text", "quarterly report")
        assert run("verify-journal", "--archive", archive) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "verified journal: clean" in out

    def test_tampered_archive(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "32")
        run("index", "--archive", archive, "--text", "quarterly report")
        # Flip a byte deep inside the journal (past the magic + headers).
        _flip_byte(archive, os.path.getsize(archive) // 2)
        assert run("verify-journal", "--archive", archive) == 1
        captured = capsys.readouterr()
        assert "TAMPERED" in captured.out
        assert "TAMPERED" in captured.err

    def test_torn_tail_is_clean(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "32")
        run("index", "--archive", archive, "--text", "quarterly report")
        with open(archive, "ab") as handle:
            handle.write(b"\x07\x07\x07")  # a torn partial record
        assert run("verify-journal", "--archive", archive) == 0
        assert "torn tail: 3 B discarded" in capsys.readouterr().out

    def test_missing_archive(self, archive, capsys):
        assert run("verify-journal", "--archive", archive) == 2
        assert "no archive" in capsys.readouterr().err

    def test_sharded_archive_scans_every_journal(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "32", "--shards", "2")
        run(
            "index", "--archive", archive,
            "--text", "memo one", "--text", "memo two", "--text", "memo three",
        )
        assert run("verify-journal", "--archive", archive) == 0
        out = capsys.readouterr().out
        assert "verified 3 journals: clean" in out
        assert out.count("OK") == 3

    def test_sharded_archive_reports_the_bad_shard(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "32", "--shards", "2")
        run(
            "index", "--archive", archive,
            "--text", "memo one", "--text", "memo two", "--text", "memo three",
        )
        shard0 = f"{archive}.shard00"
        assert os.path.exists(shard0)
        _flip_byte(shard0, os.path.getsize(shard0) // 2)
        assert run("verify-journal", "--archive", archive) == 1
        out = capsys.readouterr().out
        assert "TAMPERED" in out
        # The coordinator journal and the healthy shard still verify.
        assert out.count("OK") == 2


class TestDurabilityKnobs:
    def test_index_with_fsync_and_group_commit(self, archive, capsys):
        run("init", "--archive", archive, "--num-lists", "32")
        assert (
            run(
                "index", "--archive", archive,
                "--fsync", "--group-commit", "8",
                "--text", "imclone trading memo",
                "--text", "budget meeting notes",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "committed doc 0" in out
        assert "committed doc 1" in out
        engine, device = open_archive(archive)
        try:
            assert [r.doc_id for r in engine.search("imclone")] == [0]
        finally:
            device.close()
