"""Execute the doctest examples embedded in module docstrings.

The examples in the package and engine docstrings are part of the public
documentation; this keeps them from drifting out of truth.
"""

import doctest

import pytest

import repro
import repro.investigate
import repro.search.engine


@pytest.mark.parametrize(
    "module",
    [repro, repro.investigate, repro.search.engine],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
