"""Cross-cutting edge-case and error-path tests.

Collected here rather than per-module because each exercises a seam
between components (store views, CLI error codes, reattach corner
cases) rather than one module's contract.
"""

import pytest

from repro.errors import IndexError_
from repro.worm.storage import CachedWormStore


class TestStoreSeams:
    def test_ensure_file_preserves_slot_count_of_existing(self, store):
        store.create_file("f", slot_count=4)
        again = store.ensure_file("f", slot_count=99)
        assert again.slot_count == 4  # existing file wins

    def test_peek_slot_on_plain_file_rejected(self, store):
        store.create_file("plain")  # slot_count = 0
        store.append_record("plain", b"x")
        from repro.errors import BlockBoundsError

        with pytest.raises(BlockBoundsError):
            store.peek_slot("plain", 0, 0)


class TestBlockJumpIndexSeams:
    def test_create_infeasible_geometry_rejected(self):
        from repro.core.block_jump_index import BlockJumpIndex

        store = CachedWormStore(None, block_size=64)
        with pytest.raises(IndexError_):
            # 64-byte blocks cannot hold B=64's pointer array.
            BlockJumpIndex.create(store, "pl", branching=64, max_doc_bits=32)

    def test_rebuild_path_on_empty_index(self):
        from repro.core.block_jump_index import BlockJumpIndex

        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=4, max_doc_bits=16)
        bji.rebuild_path()  # no blocks yet: must be a no-op
        bji.insert(5)
        assert bji.lookup(5)

    def test_find_geq_on_exhausted_cursor(self):
        from repro.core.block_jump_index import BlockJumpIndex

        store = CachedWormStore(None, block_size=256)
        bji = BlockJumpIndex.create(store, "pl", branching=4, max_doc_bits=16)
        for v in range(10):
            bji.insert(v)
        cursor = bji.posting_list.cursor()
        assert bji.find_geq(cursor, 100) is None
        assert cursor.exhausted
        assert bji.find_geq(cursor, 0) is None  # stays exhausted


class TestEpochedStoreView:
    def test_view_passthroughs(self):
        from repro.search.epoched import _PrefixedStoreView

        store = CachedWormStore(8, block_size=256)
        view = _PrefixedStoreView(store, "pfx/")
        view.create_file("a")
        view.append_record("a", b"hello")
        assert view.read_block("a", 0) == b"hello"
        assert view.peek_block("a", 0) == b"hello"
        assert view.block_size == 256
        assert view.io is store.io
        assert view.cache is store.cache
        assert store.device.exists("pfx/a")
        assert view.device.exists("a")
        assert view.device.list_files() == ["a"]

    def test_views_are_isolated(self):
        from repro.search.epoched import _PrefixedStoreView

        store = CachedWormStore(None, block_size=256)
        a = _PrefixedStoreView(store, "a/")
        b = _PrefixedStoreView(store, "b/")
        a.create_file("same-name")
        b.create_file("same-name")  # no collision
        assert a.device.exists("same-name")
        assert not a.device.exists("other")


class TestCliErrorPaths:
    def test_search_raises_exit_code_on_hard_tamper(self, tmp_path, capsys):
        """A corrupted commit log fails reattach with exit code 2."""
        from repro.cli import main, open_archive

        archive = str(tmp_path / "a.worm")
        assert main(["init", "--archive", archive, "--num-lists", "8"]) == 0
        assert (
            main(
                ["index", "--archive", archive, "--text", "imclone memo",
                 "--commit-time", "100"]
            )
            == 0
        )
        engine, device = open_archive(archive)
        import struct

        engine.store.device.open_file("engine/commit-times").append_record(
            struct.pack("<QI", 0, 99)
        )
        device.close()
        capsys.readouterr()
        # Reattach replays the tampered log and raises; the CLI surfaces
        # a nonzero exit rather than a traceback.
        code = main(["search", "--archive", archive, "imclone"])
        assert code != 0

    def test_index_missing_file_exits_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        archive = str(tmp_path / "a.worm")
        main(["init", "--archive", archive])
        capsys.readouterr()
        code = main(["index", "--archive", archive, str(tmp_path / "missing.txt")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestEngineSeams:
    def test_index_term_counts_stores_text_by_default(self):
        from repro.search.engine import EngineConfig, TrustworthySearchEngine

        engine = TrustworthySearchEngine(EngineConfig(num_lists=8, branching=None))
        doc_id = engine.index_term_counts({"alpha": 2, "beta": 1})
        text = engine.documents.get(doc_id).text
        assert text.split() == ["alpha", "alpha", "beta"]

    def test_index_term_counts_can_skip_text(self):
        from repro.search.engine import EngineConfig, TrustworthySearchEngine

        engine = TrustworthySearchEngine(EngineConfig(num_lists=8, branching=None))
        doc_id = engine.index_term_counts({"alpha": 1}, store_text=False)
        assert engine.documents.get(doc_id).text == ""
        # Still searchable: the posting went in regardless.
        assert [r.doc_id for r in engine.search("alpha")] == [doc_id]

    def test_archive_stats_counts_committed_state(self):
        from repro.search.engine import EngineConfig, TrustworthySearchEngine

        engine = TrustworthySearchEngine(EngineConfig(num_lists=8, branching=4))
        engine.index_document("alpha beta gamma")
        stats = engine.archive_stats()
        assert stats["documents"] == 1
        assert stats["postings"] == 3
        assert stats["commit_log_records"] == 1
        assert stats["device_bytes"] > 0

    def test_time_index_last_commit_time_empty(self, store):
        from repro.core.time_index import CommitTimeIndex

        assert CommitTimeIndex(store, "t").last_commit_time == -1
