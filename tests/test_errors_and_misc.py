"""Coverage for the error hierarchy and small shared utilities."""


from repro import errors


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for name in (
            "WormError",
            "WormViolationError",
            "UnknownFileError",
            "FileExistsOnWormError",
            "BlockBoundsError",
            "TamperDetectedError",
            "IndexError_",
            "DocumentIdOrderError",
            "QueryError",
            "WorkloadError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError), name

    def test_worm_violation_is_a_worm_error(self):
        assert issubclass(errors.WormViolationError, errors.WormError)

    def test_order_error_is_an_index_error(self):
        assert issubclass(errors.DocumentIdOrderError, errors.IndexError_)

    def test_tamper_error_carries_context(self):
        exc = errors.TamperDetectedError(
            "bad", location="block 3", invariant="jump-monotonicity"
        )
        assert exc.location == "block 3"
        assert exc.invariant == "jump-monotonicity"
        assert str(exc) == "bad"

    def test_tamper_error_context_defaults_empty(self):
        exc = errors.TamperDetectedError("bad")
        assert exc.location == ""
        assert exc.invariant == ""

    def test_one_except_clause_catches_everything(self):
        caught = 0
        for exc_type in (
            errors.WormViolationError,
            errors.TamperDetectedError,
            errors.QueryError,
        ):
            try:
                raise exc_type("x")
            except errors.ReproError:
                caught += 1
        assert caught == 3


class TestBundleHelpers:
    def test_cursor_for_missing_term_list(self, tiny_workload):
        from repro.simulate.jump_sim import build_merged_index

        bundle = build_merged_index(
            tiny_workload.documents[:50],
            num_lists=4,
            branching=None,
            block_size=1024,
        )
        # A term whose physical list was never created yields no cursor.
        absent = tiny_workload.vocabulary_size - 1
        missing = [
            lid
            for lid in range(4)
            if lid not in bundle.lists
        ]
        if missing:
            term = next(
                t
                for t in range(tiny_workload.vocabulary_size)
                if bundle.assignment.list_for(t) == missing[0]
            )
            assert bundle.cursor_for_term(term) is None

    def test_ios_per_doc_zero_docs_safe(self):
        from repro.simulate.jump_sim import MergedIndexBundle
        from repro.core.merge import UniformHashMerge
        from repro.worm.storage import CachedWormStore

        bundle = MergedIndexBundle(
            store=CachedWormStore(None),
            assignment=UniformHashMerge(2).assign(4),
            lists={},
            jumps={},
            num_docs=0,
        )
        assert bundle.ios_per_doc() == 0.0


class TestReportFormatting:
    def test_fmt_handles_extremes(self):
        from repro.simulate.report import format_table

        out = format_table(
            ["v"], [(1e-9,), (1e12,), (float(0),), (-0.5,)]
        )
        assert "1e-09" in out or "1e-9" in out
        assert "0" in out

    def test_empty_rows(self):
        from repro.simulate.report import format_table

        out = format_table(["a", "b"], [])
        assert out.splitlines()[0].strip().startswith("a")
