"""Tests for the certified investigation session (Bob's toolkit)."""

import json

import pytest

from repro.adversary.attacks import posting_stuffing_attack
from repro.investigate import Investigation
from repro.search.engine import EngineConfig, TrustworthySearchEngine


@pytest.fixture()
def engine():
    engine = TrustworthySearchEngine(EngineConfig(num_lists=16, branching=4))
    for text in [
        "imclone trading memo for stewart",
        "quarterly finance audit",
        "stewart waksal november summary",
    ]:
        engine.index_document(text)
    return engine


class TestCleanInvestigation:
    def test_search_records_verified_results(self, engine):
        case = Investigation(engine, case_id="C-1")
        hits = case.search("stewart")
        assert sorted(h.doc_id for h in hits) == [0, 2]
        record = case.case_file()["queries"][0]
        assert record["verified"]
        assert record["alarm"] is None
        assert case.alarm_count == 0

    def test_retrieve_folds_text_into_case_file(self, engine):
        case = Investigation(engine)
        text = case.retrieve(1)
        assert "finance" in text
        assert case.case_file()["documents_retrieved"]["1"] == text

    def test_full_audit_clean(self, engine):
        case = Investigation(engine)
        assert case.run_full_audit() is True
        audits = case.case_file()["audits"]
        assert audits and all(a["ok"] for a in audits)

    def test_export_round_trips(self, engine, tmp_path):
        case = Investigation(engine, case_id="SEC-2002-001")
        case.search("+stewart +imclone")
        path = tmp_path / "case.json"
        case.export(str(path))
        data = json.loads(path.read_text())
        assert data["case_id"] == "SEC-2002-001"
        assert data["queries"][0]["results"] == [0]


class TestTamperedInvestigation:
    def test_stuffing_becomes_a_finding_not_a_failure(self, engine):
        tid = engine.term_id("imclone")
        posting_stuffing_attack(
            engine._lists[engine._list_id_for(tid)], tid, count=4
        )
        case = Investigation(engine)
        hits = case.search("imclone")
        # The genuine document still surfaces; fakes are quarantined.
        assert [h.doc_id for h in hits] == [0]
        assert case.alarm_count == 1
        record = case.case_file()["queries"][0]
        assert record["verified"] and record["alarm"]

    def test_structural_tamper_recorded_without_crashing(self, engine):
        import struct

        engine.store.device.open_file("engine/commit-times").append_record(
            struct.pack("<QI", 0, 99)
        )
        case = Investigation(engine)
        hits = case.search("imclone @0..10")  # range scan hits the bad record
        assert hits == []
        assert case.alarm_count == 1
        alarm = case.case_file()["alarms"][0]
        assert alarm["invariant"] == "commit-time-monotonicity"

    def test_audit_findings_folded_into_case_file(self, engine):
        from repro.core.posting import encode_posting

        name = next(iter(engine._lists.values())).name
        target = engine.store.device.open_file(name)
        # A legal-looking but out-of-order raw append (if the list's
        # last ID is 0, use a different victim below it instead).
        target.append_record(encode_posting(0, 0))
        case = Investigation(engine)
        healthy = case.run_full_audit()
        audits = case.case_file()["audits"]
        assert len(audits) == len(engine._lists) + 1
        # Whether this particular list had last ID > 0 decides if the
        # violation fires; either way the audit ran and was recorded.
        assert isinstance(healthy, bool)
