"""Hypothesis stateful tests: long random histories against references.

Two machines:

* :class:`EngineMachine` — random ingest/search against a brute-force
  in-memory index; checks disjunctive and conjunctive answers, document
  round-trips, and commit-time ranges after every step.
* :class:`JumpIndexMachine` — random monotone inserts interleaved with
  lookups/find_geq against a sorted list reference.
"""

import bisect

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.jump_index import JumpIndex
from repro.search.engine import EngineConfig, TrustworthySearchEngine

WORDS = [
    "imclone", "stewart", "waksal", "audit", "revenue", "memo", "meeting",
    "storage", "retention", "policy", "trading", "budget",
]


class EngineMachine(RuleBasedStateMachine):
    """Random ingest + queries, mirrored against a brute-force index."""

    def __init__(self):
        super().__init__()
        self.engine = TrustworthySearchEngine(
            EngineConfig(num_lists=8, branching=2, block_size=512)
        )
        self.docs = {}  # doc_id -> set of terms
        self.commit_times = {}

    @rule(
        terms=st.lists(st.sampled_from(WORDS), min_size=1, max_size=5),
        gap=st.integers(min_value=0, max_value=3),
    )
    def ingest(self, terms, gap):
        commit_time = (max(self.commit_times.values()) if self.commit_times else 0) + 1 + gap
        doc_id = self.engine.index_document(
            " ".join(terms), commit_time=commit_time
        )
        self.docs[doc_id] = set(terms)
        self.commit_times[doc_id] = commit_time

    @precondition(lambda self: self.docs)
    @rule(term=st.sampled_from(WORDS))
    def disjunctive_query(self, term):
        expected = {d for d, terms in self.docs.items() if term in terms}
        got = {
            r.doc_id
            for r in self.engine.search(term, top_k=len(self.docs) + 1)
        }
        assert got == expected

    @precondition(lambda self: self.docs)
    @rule(t1=st.sampled_from(WORDS), t2=st.sampled_from(WORDS))
    def conjunctive_query(self, t1, t2):
        if t1 == t2:
            return
        expected = {
            d for d, terms in self.docs.items() if t1 in terms and t2 in terms
        }
        got, _ = self.engine.conjunctive_doc_ids([t1, t2])
        assert set(got) == expected

    @precondition(lambda self: self.docs)
    @rule(data=st.data())
    def time_range_query(self, data):
        times = sorted(self.commit_times.values())
        lo = data.draw(st.sampled_from(times))
        hi = data.draw(st.sampled_from([t for t in times if t >= lo]))
        expected = [
            d for d, t in sorted(self.commit_times.items()) if lo <= t <= hi
        ]
        assert self.engine.time_index.docs_in_range(lo, hi) == expected

    @invariant()
    def documents_round_trip(self):
        for doc_id, terms in list(self.docs.items())[-3:]:
            text = self.engine.documents.get(doc_id).text
            assert set(text.split()) == terms


class JumpIndexMachine(RuleBasedStateMachine):
    """Random monotone inserts vs a sorted-list reference."""

    def __init__(self):
        super().__init__()
        self.index = JumpIndex(max_value_bits=24)
        self.values = []

    @rule(gap=st.integers(min_value=1, max_value=1000))
    def insert(self, gap):
        value = (self.values[-1] if self.values else 0) + gap
        self.index.insert(value)
        self.values.append(value)

    @precondition(lambda self: self.values)
    @rule(data=st.data())
    def lookup(self, data):
        probe = data.draw(
            st.integers(min_value=0, max_value=self.values[-1] + 10)
        )
        assert self.index.lookup(probe) == (probe in set(self.values))

    @precondition(lambda self: self.values)
    @rule(data=st.data())
    def find_geq(self, data):
        probe = data.draw(
            st.integers(min_value=0, max_value=self.values[-1] + 10)
        )
        idx = bisect.bisect_left(self.values, probe)
        expected = self.values[idx] if idx < len(self.values) else None
        assert self.index.find_geq(probe) == expected

    @invariant()
    def all_values_visible(self):
        for value in self.values[-5:]:
            assert self.index.lookup(value)


TestEngineMachine = EngineMachine.TestCase
TestEngineMachine.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)

TestJumpIndexMachine = JumpIndexMachine.TestCase
TestJumpIndexMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
