"""Unit tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.vocabulary import Vocabulary


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(
            num_docs=300, vocabulary_size=2_000, mean_terms_per_doc=50, seed=5
        )
    )


class TestGeneration:
    def test_document_count(self, corpus):
        assert len(list(corpus)) == 300

    def test_doc_ids_consecutive_from_base(self, corpus):
        ids = [d.doc_id for d in corpus]
        assert ids == list(range(300))

    def test_first_doc_id_offset(self):
        gen = CorpusGenerator(
            CorpusConfig(num_docs=5, vocabulary_size=100, mean_terms_per_doc=10),
            first_doc_id=1000,
        )
        assert [d.doc_id for d in gen] == list(range(1000, 1005))

    def test_deterministic(self, corpus):
        first = [tuple(d.term_ids) for d in corpus]
        second = [tuple(d.term_ids) for d in corpus]
        assert first == second

    def test_term_ids_sorted_distinct(self, corpus):
        for doc in corpus:
            assert (np.diff(doc.term_ids) > 0).all()

    def test_counts_parallel_and_positive(self, corpus):
        for doc in corpus:
            assert len(doc.term_counts) == len(doc.term_ids)
            assert (doc.term_counts >= 1).all()
            assert doc.length == doc.term_counts.sum()

    def test_term_ids_within_vocabulary(self, corpus):
        for doc in corpus:
            assert doc.term_ids.max() < 2_000

    def test_mean_length_near_target(self, corpus):
        lengths = [d.length for d in corpus]
        assert 35 <= np.mean(lengths) <= 70  # log-normal around 50

    def test_constant_length_mode(self):
        gen = CorpusGenerator(
            CorpusConfig(
                num_docs=20,
                vocabulary_size=500,
                mean_terms_per_doc=30,
                doc_length_sigma=0.0,
            )
        )
        assert all(d.length == 30 for d in gen)


class TestStatistics:
    def test_term_frequencies_zipfian_head(self, corpus):
        ti = corpus.term_document_frequencies()
        ranked = np.sort(ti)[::-1]
        # Zipf: the head towers over the body.
        assert ranked[0] > 5 * ranked[100]
        assert ranked.sum() == sum(d.num_distinct_terms for d in corpus)

    def test_frequencies_match_manual_count(self, corpus):
        ti = corpus.term_document_frequencies()
        manual = np.zeros(2_000, dtype=np.int64)
        for doc in corpus:
            manual[doc.term_ids] += 1
        assert (ti == manual).all()


class TestRendering:
    def test_text_repeats_terms_by_count(self):
        gen = CorpusGenerator(
            CorpusConfig(num_docs=1, vocabulary_size=100, mean_terms_per_doc=20)
        )
        vocab = Vocabulary(100)
        doc = next(iter(gen))
        words = doc.text(vocab).split()
        assert len(words) == doc.length
        assert set(words) == {vocab.word(int(t)) for t in doc.term_ids}


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_docs": 0},
            {"vocabulary_size": 0},
            {"mean_terms_per_doc": 0},
            {"doc_length_sigma": -0.1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            CorpusConfig(**kwargs)
