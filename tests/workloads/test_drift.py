"""Unit tests for the drifting-popularity workload generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.drift import DriftConfig, DriftingWorkload


@pytest.fixture(scope="module")
def drift():
    return DriftingWorkload(
        DriftConfig(
            vocabulary_size=2_000,
            num_epochs=4,
            queries_per_epoch=500,
            hot_pool_size=200,
            drift_stride=20,
        )
    )


class TestPopularityRotation:
    def test_epoch_zero_matches_base_ranking(self, drift):
        pop = drift.epoch_popularity(0)
        assert pop[0] == pop.max()
        assert (np.diff(pop[:200]) < 0).all()

    def test_rotation_promotes_later_terms(self, drift):
        pop1 = drift.epoch_popularity(1)
        assert np.argmax(pop1) == 20  # shifted by one stride

    def test_tail_untouched(self, drift):
        pop0 = drift.epoch_popularity(0)
        pop3 = drift.epoch_popularity(3)
        assert np.allclose(pop0[200:], pop3[200:])

    def test_profiles_normalized(self, drift):
        for epoch_no in range(4):
            assert drift.epoch_popularity(epoch_no).sum() == pytest.approx(1.0)

    def test_overlap_declines_with_distance(self, drift):
        overlaps = [drift.hot_set_overlap(0, e, top_k=100) for e in range(4)]
        assert overlaps[0] == 1.0
        assert overlaps == sorted(overlaps, reverse=True)
        assert overlaps[1] == pytest.approx(0.8)  # stride 20 of top 100

    def test_zero_stride_is_stable(self):
        stable = DriftingWorkload(
            DriftConfig(
                vocabulary_size=500,
                num_epochs=3,
                queries_per_epoch=50,
                hot_pool_size=100,
                drift_stride=0,
            )
        )
        assert stable.hot_set_overlap(0, 2) == 1.0


class TestEpochGeneration:
    def test_deterministic(self, drift):
        a = [q.term_ids for e in drift.epochs() for q in e.queries]
        b = [q.term_ids for e in drift.epochs() for q in e.queries]
        assert a == b

    def test_qi_matches_queries(self, drift):
        for epoch in drift.epochs():
            manual = np.zeros(2_000, dtype=np.int64)
            for query in epoch.queries:
                for term in query.term_ids:
                    manual[term] += 1
            assert (manual == epoch.qi).all()

    def test_hot_terms_shift_between_epochs(self, drift):
        epochs = list(drift.epochs())
        top0 = int(np.argmax(epochs[0].qi))
        top3 = int(np.argmax(epochs[3].qi))
        assert top0 != top3

    def test_terms_distinct_within_query(self, drift):
        for epoch in drift.epochs():
            for query in epoch.queries:
                assert len(set(query.term_ids)) == len(query.term_ids)

    def test_stats_helper(self, drift):
        epoch = next(iter(drift.epochs()))
        ti = np.ones(2_000, dtype=np.int64)
        stats = drift.stats_for_epoch(epoch, ti)
        assert (stats.qi == epoch.qi).all()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vocabulary_size": 0},
            {"num_epochs": 0},
            {"queries_per_epoch": 0},
            {"hot_pool_size": 0},
            {"hot_pool_size": 10, "drift_stride": 11},
            {"terms_per_query": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        base = dict(vocabulary_size=100, hot_pool_size=50, drift_stride=5)
        base.update(kwargs)
        with pytest.raises(WorkloadError):
            DriftConfig(**base)
