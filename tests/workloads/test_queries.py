"""Unit tests for the synthetic query-log generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.workloads.queries import QueryLogConfig, QueryLogGenerator


@pytest.fixture(scope="module")
def log():
    return QueryLogGenerator(
        QueryLogConfig(num_queries=2_000, vocabulary_size=2_000, seed=3)
    )


class TestGeneration:
    def test_query_count_and_ids(self, log):
        queries = list(log)
        assert len(queries) == 2_000
        assert [q.query_id for q in queries] == list(range(2_000))

    def test_deterministic(self, log):
        first = [q.term_ids for q in log]
        second = [q.term_ids for q in log]
        assert first == second

    def test_terms_distinct_within_query(self, log):
        for query in log:
            assert len(set(query.term_ids)) == query.num_terms

    def test_terms_within_vocabulary(self, log):
        for query in log:
            assert all(0 <= t < 2_000 for t in query.term_ids)

    def test_term_count_mix_short_dominated(self, log):
        sizes = np.array([q.num_terms for q in log])
        assert sizes.min() >= 1
        assert sizes.max() <= 7
        assert (sizes <= 3).mean() > 0.7

    def test_query_popularity_normalized(self, log):
        pop = log.query_popularity()
        assert pop.sum() == pytest.approx(1.0)
        assert (pop >= 0).all()


class TestCorrelation:
    def test_popular_query_terms_are_document_popular(self):
        """Section 3.3: high-qi terms generally have high ti."""
        vocab = 2_000
        corpus = CorpusGenerator(
            CorpusConfig(num_docs=400, vocabulary_size=vocab, mean_terms_per_doc=60)
        )
        log = QueryLogGenerator(
            QueryLogConfig(num_queries=3_000, vocabulary_size=vocab, rank_jitter=10.0)
        )
        ti = corpus.term_document_frequencies()
        qi = log.term_query_frequencies()
        top_q = np.argsort(qi)[::-1][:20]
        median_ti = np.median(ti[ti > 0])
        # Most of the top-queried terms are well above the median ti.
        assert (ti[top_q] > median_ti).mean() > 0.8

    def test_demoted_terms_rarely_queried(self):
        cfg = QueryLogConfig(
            num_queries=3_000,
            vocabulary_size=1_000,
            demoted_fraction=0.05,
            rank_jitter=0.0,
            seed=9,
        )
        log = QueryLogGenerator(cfg)
        rng = np.random.default_rng(cfg.seed + 1)
        demoted = log._demoted_ranks(rng)
        assert len(demoted) > 0
        qi = log.term_query_frequencies()
        # Demoted document-popular terms are queried far less than their
        # non-demoted top-rank peers.
        top = np.setdiff1d(np.arange(20), demoted)
        if len(top) and len(demoted):
            assert qi[demoted].mean() < qi[top].mean() / 2


class TestSampling:
    def test_sample_fraction(self, log):
        sample = log.sample_queries(0.1, seed=1)
        assert 100 < len(sample) < 320  # ~10% of 2000

    def test_sample_deterministic(self, log):
        a = [q.query_id for q in log.sample_queries(0.05, seed=2)]
        b = [q.query_id for q in log.sample_queries(0.05, seed=2)]
        assert a == b

    def test_bad_fraction_rejected(self, log):
        with pytest.raises(WorkloadError):
            log.sample_queries(0.0)
        with pytest.raises(WorkloadError):
            log.sample_queries(1.5)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_queries": 0},
            {"vocabulary_size": 0},
            {"demoted_fraction": 1.0},
            {"term_count_weights": ()},
            {"term_count_weights": (1.0, -0.5)},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            QueryLogConfig(**kwargs)
