"""Unit tests for the workload statistics (ti/qi machinery)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.stats import WorkloadStats


@pytest.fixture()
def stats():
    ti = np.array([100, 50, 10, 5, 1, 0])
    qi = np.array([80, 2, 40, 1, 0, 3])
    return WorkloadStats(ti=ti, qi=qi)


class TestRankedViews:
    def test_tf_ranked_descending(self, stats):
        assert list(stats.tf_ranked()) == [100, 50, 10, 5, 1, 0]

    def test_qf_ranked_descending(self, stats):
        assert list(stats.qf_ranked()) == [80, 40, 3, 2, 1, 0]

    def test_top_terms_by_tf(self, stats):
        assert list(stats.top_terms_by_tf(2)) == [0, 1]

    def test_top_terms_by_qf(self, stats):
        assert list(stats.top_terms_by_qf(3)) == [0, 2, 5]

    def test_top_terms_k_larger_than_universe(self, stats):
        assert len(stats.top_terms_by_tf(100)) == 6

    def test_top_terms_zero(self, stats):
        assert len(stats.top_terms_by_qf(0)) == 0

    def test_top_terms_negative_rejected(self, stats):
        with pytest.raises(WorkloadError):
            stats.top_terms_by_tf(-1)


class TestCost:
    def test_per_term_cost(self, stats):
        expected = [8000, 100, 400, 5, 0, 0]
        assert list(stats.per_term_cost()) == expected

    def test_total_unmerged_cost(self, stats):
        assert stats.total_unmerged_cost() == 8505.0

    def test_cumulative_by_qf_saturates_faster_than_tf(self, stats):
        """Figure 3(c): the QF curve reaches the total sooner."""
        qf = stats.cumulative_cost_by_qf_rank()
        tf = stats.cumulative_cost_by_tf_rank()
        assert qf[-1] == tf[-1] == stats.total_unmerged_cost()
        assert qf[1] >= tf[1]

    def test_cumulative_top_k(self, stats):
        assert len(stats.cumulative_cost_by_tf_rank(top_k=3)) == 3

    def test_cumulative_monotone(self, stats):
        for curve in (
            stats.cumulative_cost_by_qf_rank(),
            stats.cumulative_cost_by_tf_rank(),
        ):
            assert (np.diff(curve) >= 0).all()


class TestDiagnostics:
    def test_rank_correlation_perfect(self):
        ti = np.array([10, 9, 8, 7])
        s = WorkloadStats(ti=ti, qi=ti.copy())
        assert s.rank_correlation() == pytest.approx(1.0)

    def test_rank_correlation_inverted(self):
        s = WorkloadStats(ti=np.array([4, 3, 2, 1]), qi=np.array([1, 2, 3, 4]))
        assert s.rank_correlation() == pytest.approx(-1.0)

    def test_rank_correlation_constant_is_zero(self):
        s = WorkloadStats(ti=np.array([5, 5, 5]), qi=np.array([1, 2, 3]))
        assert s.rank_correlation() == 0.0

    def test_restrict_to(self, stats):
        sub = stats.restrict_to([0, 2])
        assert list(sub.ti) == [100, 10]
        assert list(sub.qi) == [80, 40]


class TestValidation:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadStats(ti=np.array([1, 2]), qi=np.array([1]))

    def test_negative_frequencies_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadStats(ti=np.array([-1]), qi=np.array([0]))

    def test_from_workload(self):
        from repro.workloads.corpus import CorpusConfig, CorpusGenerator
        from repro.workloads.queries import QueryLogConfig, QueryLogGenerator

        corpus = CorpusGenerator(
            CorpusConfig(num_docs=50, vocabulary_size=200, mean_terms_per_doc=20)
        )
        log = QueryLogGenerator(
            QueryLogConfig(num_queries=100, vocabulary_size=200)
        )
        stats = WorkloadStats.from_workload(corpus, log)
        assert stats.num_terms == 200
        assert stats.ti.sum() > 0
        assert stats.qi.sum() > 0
