"""Unit tests for workload traces (user-supplied data path)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.corpus import SyntheticDocument
from repro.workloads.queries import SyntheticQuery
from repro.workloads.trace import (
    corpus_from_texts,
    load_corpus,
    load_queries,
    queries_from_strings,
    save_corpus,
    save_queries,
    stats_from_traces,
)


def make_doc(doc_id, pairs):
    pairs = sorted(pairs)
    return SyntheticDocument(
        doc_id=doc_id,
        term_ids=np.asarray([t for t, _ in pairs], dtype=np.int64),
        term_counts=np.asarray([c for _, c in pairs], dtype=np.int64),
    )


class TestCorpusRoundTrip:
    def test_save_and_load(self, tmp_path):
        docs = [make_doc(0, [(1, 2), (5, 1)]), make_doc(3, [(2, 7)])]
        path = str(tmp_path / "corpus.jsonl")
        assert save_corpus(docs, path) == 2
        loaded = load_corpus(path)
        assert len(loaded) == 2
        assert loaded[0].doc_id == 0
        assert list(loaded[0].term_ids) == [1, 5]
        assert list(loaded[1].term_counts) == [7]

    def test_non_monotonic_ids_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        save_corpus([make_doc(5, [(1, 1)]), make_doc(5, [(2, 1)])], path)
        with pytest.raises(WorkloadError):
            load_corpus(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        save_corpus([make_doc(0, [(1, 1)])], path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_corpus(path)) == 1

    def test_synthetic_corpus_round_trips(self, tmp_path, tiny_workload):
        docs = tiny_workload.documents[:50]
        path = str(tmp_path / "synthetic.jsonl")
        save_corpus(docs, path)
        loaded = load_corpus(path)
        for original, restored in zip(docs, loaded):
            assert (original.term_ids == restored.term_ids).all()
            assert (original.term_counts == restored.term_counts).all()


class TestQueryRoundTrip:
    def test_save_and_load(self, tmp_path):
        queries = [SyntheticQuery(0, (3, 1)), SyntheticQuery(1, (9,))]
        path = str(tmp_path / "queries.jsonl")
        assert save_queries(queries, path) == 2
        loaded = load_queries(path)
        assert loaded[0].term_ids == (3, 1)
        assert loaded[1].query_id == 1


class TestFromRawText:
    TEXTS = [
        "imclone trading memo for stewart",
        "stewart waksal trading summary",
        "quarterly finance audit",
    ]

    def test_corpus_from_texts(self):
        docs, vocab = corpus_from_texts(self.TEXTS)
        assert len(docs) == 3
        assert vocab["imclone"] == 0  # first term of the first doc
        # Every doc's term IDs resolve back through the vocabulary.
        reverse = {v: k for k, v in vocab.items()}
        words = {reverse[int(t)] for t in docs[1].term_ids}
        assert words == {"stewart", "waksal", "trading", "summary"}

    def test_term_counts_preserved(self):
        docs, vocab = corpus_from_texts(["audit audit audit memo"])
        counts = dict(zip(docs[0].term_ids, docs[0].term_counts))
        assert counts[vocab["audit"]] == 3
        assert counts[vocab["memo"]] == 1

    def test_queries_from_strings(self):
        _, vocab = corpus_from_texts(self.TEXTS)
        queries = queries_from_strings(
            ["stewart waksal", "unknownterm", "imclone unknownterm"], vocab
        )
        assert len(queries) == 2  # all-unknown query omitted
        assert queries[0].term_ids == (vocab["stewart"], vocab["waksal"])
        assert queries[1].term_ids == (vocab["imclone"],)

    def test_unknown_terms_can_raise(self):
        _, vocab = corpus_from_texts(self.TEXTS)
        with pytest.raises(WorkloadError):
            queries_from_strings(
                ["mystery"], vocab, skip_unknown_terms=False
            )


class TestStats:
    def test_stats_from_traces(self):
        docs, vocab = corpus_from_texts(
            ["imclone memo", "imclone audit", "audit plan"]
        )
        queries = queries_from_strings(["imclone", "imclone audit"], vocab)
        stats = stats_from_traces(docs, queries)
        assert stats.ti[vocab["imclone"]] == 2
        assert stats.ti[vocab["audit"]] == 2
        assert stats.qi[vocab["imclone"]] == 2
        assert stats.qi[vocab["audit"]] == 1

    def test_explicit_vocabulary_size(self):
        docs, _ = corpus_from_texts(["one two"])
        stats = stats_from_traces(docs, [], vocabulary_size=100)
        assert stats.num_terms == 100

    def test_feeds_the_cost_model(self):
        """A user trace drives the same machinery as the synthetic one."""
        from repro.core.cost_model import cost_ratio
        from repro.core.merge import UniformHashMerge

        docs, vocab = corpus_from_texts(
            [f"term{i} common filler" for i in range(20)]
        )
        queries = queries_from_strings(["common"], vocab)
        stats = stats_from_traces(docs, queries)
        assignment = UniformHashMerge(4).assign(stats.num_terms)
        assert cost_ratio(assignment, stats) >= 1.0
