"""Unit tests for the synthetic vocabulary."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.vocabulary import Vocabulary, _COMMON_WORDS


class TestVocabulary:
    def test_bijection(self):
        vocab = Vocabulary(500)
        for term_id in range(500):
            assert vocab.term_id(vocab.word(term_id)) == term_id

    def test_all_words_unique(self):
        vocab = Vocabulary(2000)
        words = list(vocab)
        assert len(set(words)) == 2000

    def test_deterministic_across_instances(self):
        a, b = Vocabulary(300), Vocabulary(300)
        assert list(a) == list(b)

    def test_common_words_occupy_top_ranks(self):
        vocab = Vocabulary(100)
        assert vocab.word(0) == _COMMON_WORDS[0]
        assert "following" in vocab  # the paper's example term

    def test_contains(self):
        vocab = Vocabulary(10)
        assert vocab.word(5) in vocab
        assert "definitely-not-a-word" not in vocab

    def test_words_batch(self):
        vocab = Vocabulary(10)
        assert vocab.words([0, 1]) == [vocab.word(0), vocab.word(1)]

    def test_len(self):
        assert len(Vocabulary(42)) == 42

    def test_out_of_range_rejected(self):
        vocab = Vocabulary(10)
        with pytest.raises(WorkloadError):
            vocab.word(10)
        with pytest.raises(WorkloadError):
            vocab.word(-1)

    def test_unknown_word_rejected(self):
        with pytest.raises(WorkloadError):
            Vocabulary(10).term_id("zzz-unknown")

    def test_zero_size_rejected(self):
        with pytest.raises(WorkloadError):
            Vocabulary(0)

    def test_large_vocabulary_unique_beyond_common_words(self):
        vocab = Vocabulary(60_000)
        # Sampled spot checks across the ID space.
        for term_id in (49, 50, 999, 30_000, 59_999):
            assert vocab.term_id(vocab.word(term_id)) == term_id
