"""Unit + property tests for the Zipf samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler, correlated_popularity, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        w = zipf_weights(100, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0).all()

    def test_monotone_decreasing(self):
        w = zipf_weights(50, 1.0)
        assert (np.diff(w) < 0).all()

    def test_uniform_at_zero_exponent(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_higher_exponent_more_skew(self):
        flat = zipf_weights(100, 0.5)
        steep = zipf_weights(100, 2.0)
        assert steep[0] > flat[0]
        assert steep[-1] < flat[-1]

    def test_exact_harmonic_form(self):
        w = zipf_weights(3, 1.0)
        h = 1 + 1 / 2 + 1 / 3
        assert w[0] == pytest.approx(1 / h)
        assert w[2] == pytest.approx(1 / 3 / h)

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)
        with pytest.raises(WorkloadError):
            zipf_weights(10, -1.0)


class TestZipfSampler:
    def test_deterministic_under_seed(self):
        a = ZipfSampler(100, 1.0, seed=42).sample(1000)
        b = ZipfSampler(100, 1.0, seed=42).sample(1000)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = ZipfSampler(100, 1.0, seed=1).sample(1000)
        b = ZipfSampler(100, 1.0, seed=2).sample(1000)
        assert (a != b).any()

    def test_samples_in_range(self):
        samples = ZipfSampler(37, 1.3, seed=0).sample(5000)
        assert samples.min() >= 0
        assert samples.max() < 37

    def test_rank_zero_most_frequent(self):
        samples = ZipfSampler(100, 1.2, seed=0).sample(20000)
        counts = np.bincount(samples, minlength=100)
        assert counts[0] == counts.max()
        # Head should dominate the tail under s=1.2.
        assert counts[:10].sum() > counts[50:].sum()

    def test_sample_one(self):
        sampler = ZipfSampler(10, 1.0, seed=3)
        value = sampler.sample_one()
        assert 0 <= value < 10

    def test_expected_counts(self):
        sampler = ZipfSampler(10, 1.0)
        expected = sampler.expected_counts(1000)
        assert expected.sum() == pytest.approx(1000)

    def test_custom_weights(self):
        weights = np.array([0.0, 1.0, 0.0])
        sampler = ZipfSampler(3, weights=weights, seed=0)
        assert (sampler.sample(100) == 1).all()

    def test_bad_weights_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(3, weights=np.array([1.0, 2.0]))
        with pytest.raises(WorkloadError):
            ZipfSampler(2, weights=np.array([-1.0, 2.0]))

    def test_negative_sample_size_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(3).sample(-1)

    @given(
        n=st.integers(min_value=1, max_value=500),
        s=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        size=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_samples_always_in_range(self, n, s, size):
        samples = ZipfSampler(n, s, seed=7).sample(size)
        assert len(samples) == size
        if size:
            assert samples.min() >= 0
            assert samples.max() < n


class TestCorrelatedPopularity:
    def test_zero_jitter_preserves_ranking(self):
        rng = np.random.default_rng(0)
        base = zipf_weights(50, 1.0)
        derived = correlated_popularity(base, rank_jitter=0.0, rng=rng)
        assert np.allclose(derived, base)

    def test_output_is_permutation_of_weights(self):
        rng = np.random.default_rng(0)
        base = zipf_weights(50, 1.0)
        derived = correlated_popularity(base, rank_jitter=5.0, rng=rng)
        assert np.allclose(np.sort(derived), np.sort(base))

    def test_demotion_pushes_terms_down(self):
        rng = np.random.default_rng(0)
        base = zipf_weights(50, 1.0)
        demoted = np.array([0, 1])
        derived = correlated_popularity(
            base, rank_jitter=0.0, rng=rng, demoted_ranks=demoted
        )
        # Relative to the non-demoted derivation, ranks 0 and 1 collapse.
        assert derived[0] < base[2] / base.sum() * derived.sum() + derived[2]
        assert derived[0] < derived[2]

    def test_normalized(self):
        rng = np.random.default_rng(0)
        base = zipf_weights(20, 1.0)
        derived = correlated_popularity(
            base, rank_jitter=3.0, rng=rng, demoted_ranks=np.array([0])
        )
        assert derived.sum() == pytest.approx(1.0)
