"""Unit tests for the WORM block: append-only data, write-once slots."""

import pytest

from repro.errors import BlockBoundsError, WormViolationError
from repro.worm.block import Block


class TestDataRegion:
    def test_new_block_is_empty(self):
        block = Block(64)
        assert block.fill == 0
        assert block.remaining == 64
        assert not block.is_full()

    def test_append_returns_offsets(self):
        block = Block(64)
        assert block.append(b"abcd") == 0
        assert block.append(b"efgh") == 4
        assert block.fill == 8

    def test_append_fills_block(self):
        block = Block(8)
        block.append(b"12345678")
        assert block.is_full()
        assert block.remaining == 0

    def test_append_beyond_capacity_rejected(self):
        block = Block(8)
        block.append(b"123456")
        with pytest.raises(BlockBoundsError):
            block.append(b"789")
        # The failed append must not have committed anything.
        assert block.fill == 6

    def test_read_whole_region(self):
        block = Block(64)
        block.append(b"hello")
        assert block.read() == b"hello"

    def test_read_slice(self):
        block = Block(64)
        block.append(b"hello world")
        assert block.read(6, 5) == b"world"

    def test_read_beyond_committed_rejected(self):
        block = Block(64)
        block.append(b"hi")
        with pytest.raises(BlockBoundsError):
            block.read(0, 3)

    def test_read_negative_offset_rejected(self):
        block = Block(64)
        with pytest.raises(BlockBoundsError):
            block.read(-1, 0)

    def test_committed_bytes_are_immutable_snapshot(self):
        block = Block(64)
        block.append(b"abc")
        data = block.read()
        # Mutating the returned bytes object is impossible; appending
        # more does not change earlier reads.
        block.append(b"def")
        assert data == b"abc"
        assert block.read() == b"abcdef"

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Block(0)

    def test_negative_slot_count_rejected(self):
        with pytest.raises(ValueError):
            Block(8, slot_count=-1)


class TestSlots:
    def test_slots_start_unset(self):
        block = Block(8, slot_count=3)
        assert block.slot_count == 3
        assert block.slots() == (None, None, None)
        assert block.get_slot(1) is None

    def test_set_and_get(self):
        block = Block(8, slot_count=3)
        block.set_slot(1, 42)
        assert block.get_slot(1) == 42
        assert block.slots_set == 1

    def test_slots_are_write_once(self):
        block = Block(8, slot_count=3)
        block.set_slot(0, 1)
        with pytest.raises(WormViolationError):
            block.set_slot(0, 2)
        assert block.get_slot(0) == 1

    def test_out_of_range_slot_rejected(self):
        block = Block(8, slot_count=2)
        with pytest.raises(BlockBoundsError):
            block.set_slot(2, 5)
        with pytest.raises(BlockBoundsError):
            block.get_slot(-1)

    def test_zero_value_is_a_valid_assignment(self):
        # Regression guard: 0 must be distinguishable from unset.
        block = Block(8, slot_count=1)
        block.set_slot(0, 0)
        assert block.get_slot(0) == 0
        with pytest.raises(WormViolationError):
            block.set_slot(0, 7)
