"""Unit tests for the LRU block-cache simulator (the Figure 2 engine)."""

import pytest

from repro.worm.cache import CacheStats, LRUBlockCache, cache_blocks_for_size
from repro.worm.iostats import IoStats


class TestAccessModel:
    def test_first_access_is_a_miss_with_fetch(self):
        cache = LRUBlockCache(2)
        assert cache.access("a") is False
        assert cache.io.block_reads == 1
        assert cache.io.block_writes == 0

    def test_first_access_of_new_block_skips_fetch(self):
        cache = LRUBlockCache(2)
        cache.access("a", fetch_on_miss=False)
        assert cache.io.total == 0

    def test_hit_costs_nothing(self):
        cache = LRUBlockCache(2)
        cache.access("a")
        reads = cache.io.block_reads
        assert cache.access("a") is True
        assert cache.io.block_reads == reads
        assert cache.stats.hits == 1

    def test_eviction_writes_lru_and_reads_needed(self):
        cache = LRUBlockCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("c")  # evicts a
        assert cache.io.block_writes == 1
        assert cache.io.block_reads == 3
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_lru_order_updated_on_hit(self):
        cache = LRUBlockCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # a becomes MRU
        cache.access("c")  # evicts b, not a
        assert "a" in cache
        assert "b" not in cache

    def test_no_writeback_mode(self):
        cache = LRUBlockCache(1, writeback_on_evict=False)
        cache.access("a")
        cache.access("b")
        assert cache.io.block_writes == 0
        assert cache.stats.evictions == 1

    def test_unbounded_cache_never_evicts(self):
        cache = LRUBlockCache(None)
        for i in range(1000):
            cache.access(i)
        assert cache.stats.evictions == 0
        assert len(cache) == 1000

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBlockCache(0)


class TestBlockFull:
    def test_full_block_flush_costs_one_write(self):
        cache = LRUBlockCache(2)
        cache.access("a", fetch_on_miss=False)
        cache.note_block_full("a")
        assert cache.io.block_writes == 1
        assert cache.stats.full_flushes == 1
        # Slot retained: the successor tail block is resident.
        assert "a" in cache

    def test_flush_all(self):
        cache = LRUBlockCache(None)
        for key in "abc":
            cache.access(key, fetch_on_miss=False)
        assert cache.flush_all() == 3
        assert cache.io.block_writes == 3
        assert len(cache) == 0

    def test_invalidate_costs_nothing(self):
        cache = LRUBlockCache(None)
        cache.access("a", fetch_on_miss=False)
        cache.invalidate("a")
        assert "a" not in cache
        assert cache.io.total == 0
        cache.invalidate("missing")  # no-op


class TestStats:
    def test_hit_rate(self):
        cache = LRUBlockCache(None)
        cache.access("a")
        cache.access("a")
        cache.access("a")
        assert cache.stats.accesses == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_with_no_accesses(self):
        assert CacheStats().hit_rate == 0.0

    def test_shared_io_counter(self):
        io = IoStats()
        cache = LRUBlockCache(1, io=io)
        cache.access("a")
        assert io.block_reads == 1


class TestSizing:
    def test_cache_blocks_for_size(self):
        assert cache_blocks_for_size(128 * 2**20, 8192) == 16384

    def test_minimum_one_block(self):
        assert cache_blocks_for_size(100, 8192) == 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            cache_blocks_for_size(0, 8192)
        with pytest.raises(ValueError):
            cache_blocks_for_size(1024, 0)
