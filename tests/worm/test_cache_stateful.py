"""Stateful property test: the LRU cache simulator vs a reference model.

Random access/flush/invalidate histories; residency, eviction choice and
every I/O count must match a straightforward OrderedDict model at every
step — the Figure-2/8(b) results are only as good as this simulator.
"""

from collections import OrderedDict

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.worm.cache import LRUBlockCache

CAPACITY = 4
KEYS = list(range(8))


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = LRUBlockCache(CAPACITY)
        self.model: "OrderedDict[int, None]" = OrderedDict()
        self.reads = 0
        self.writes = 0

    @rule(key=st.sampled_from(KEYS), fetch=st.booleans())
    def access(self, key, fetch):
        hit = self.cache.access(key, fetch_on_miss=fetch)
        expected_hit = key in self.model
        assert hit == expected_hit
        if expected_hit:
            self.model.move_to_end(key)
        else:
            if len(self.model) >= CAPACITY:
                self.model.popitem(last=False)
                self.writes += 1
            if fetch:
                self.reads += 1
            self.model[key] = None

    @rule(key=st.sampled_from(KEYS))
    def note_full(self, key):
        self.cache.note_block_full(key)
        self.writes += 1
        if key in self.model:
            self.model.move_to_end(key)

    @rule(key=st.sampled_from(KEYS))
    def invalidate(self, key):
        self.cache.invalidate(key)
        self.model.pop(key, None)

    @rule()
    def flush_all(self):
        self.writes += len(self.model)
        assert self.cache.flush_all() == len(self.model)
        self.model.clear()

    @invariant()
    def residency_and_counters_agree(self):
        assert len(self.cache) == len(self.model)
        for key in KEYS:
            assert (key in self.cache) == (key in self.model)
        assert self.cache.io.block_reads == self.reads
        assert self.cache.io.block_writes == self.writes


TestCacheMachine = CacheMachine.TestCase
TestCacheMachine.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)
