"""Unit tests for the WORM device and its append-only files."""

import pytest

from repro.errors import (
    FileExistsOnWormError,
    UnknownFileError,
    WormViolationError,
)
from repro.worm.device import WormDevice


@pytest.fixture()
def device():
    return WormDevice(block_size=16)


class TestNamespace:
    def test_create_and_open(self, device):
        created = device.create_file("a")
        assert device.open_file("a") is created
        assert device.exists("a")
        assert not device.exists("b")

    def test_duplicate_create_rejected(self, device):
        device.create_file("a")
        with pytest.raises(FileExistsOnWormError):
            device.create_file("a")

    def test_open_missing_rejected(self, device):
        with pytest.raises(UnknownFileError):
            device.open_file("nope")

    def test_list_files_sorted(self, device):
        for name in ["b", "a", "c"]:
            device.create_file(name)
        assert device.list_files() == ["a", "b", "c"]
        assert len(device) == 3

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            WormDevice(block_size=0)


class TestRetention:
    def test_delete_without_retention_always_refused(self, device):
        device.create_file("forever")
        with pytest.raises(WormViolationError):
            device.delete_file("forever", now=10**12)
        assert device.exists("forever")

    def test_delete_before_expiry_refused(self, device):
        device.create_file("term", retention_until=100.0)
        with pytest.raises(WormViolationError):
            device.delete_file("term", now=99.0)

    def test_delete_after_expiry_allowed(self, device):
        device.create_file("term", retention_until=100.0)
        device.delete_file("term", now=100.0)
        assert not device.exists("term")

    def test_delete_without_clock_refused(self, device):
        device.create_file("term", retention_until=100.0)
        with pytest.raises(WormViolationError):
            device.delete_file("term")


class TestAppendRecords:
    def test_records_fill_then_roll(self, device):
        f = device.create_file("f")
        positions = [f.append_record(b"12345678") for _ in range(3)]
        assert positions == [(0, 0), (0, 8), (1, 0)]
        assert f.num_blocks == 2

    def test_record_never_spans_blocks(self, device):
        f = device.create_file("f")
        f.append_record(b"123456789012")  # 12 of 16 bytes
        block_no, offset = f.append_record(b"12345678")  # does not fit
        assert (block_no, offset) == (1, 0)
        assert f.block(0).fill == 12

    def test_oversized_record_rejected(self, device):
        f = device.create_file("f")
        with pytest.raises(WormViolationError):
            f.append_record(b"x" * 17)

    def test_force_new_block(self, device):
        f = device.create_file("f")
        f.append_record(b"ab")
        block_no, offset = f.append_record(b"cd", force_new_block=True)
        assert (block_no, offset) == (1, 0)

    def test_read_back(self, device):
        f = device.create_file("f")
        f.append_record(b"abcd")
        f.append_record(b"efgh")
        assert f.read(0) == b"abcdefgh"
        assert f.read(0, 4, 4) == b"efgh"

    def test_total_bytes(self, device):
        f = device.create_file("f")
        f.append_record(b"abcd")
        g = device.create_file("g")
        g.append_record(b"xy")
        assert f.total_bytes() == 4
        assert device.total_bytes() == 6

    def test_missing_block_rejected(self, device):
        f = device.create_file("f")
        with pytest.raises(UnknownFileError):
            f.block(0)

    def test_tail_block_no(self, device):
        f = device.create_file("f")
        assert f.tail_block_no == -1
        f.append_record(b"x")
        assert f.tail_block_no == 0


class TestFileSlots:
    def test_slots_reserved_per_block(self, device):
        f = device.create_file("f", slot_count=2)
        f.append_record(b"x")
        f.set_slot(0, 1, 99)
        assert f.get_slot(0, 1) == 99
        assert f.get_slot(0, 0) is None

    def test_slots_write_once_through_file(self, device):
        f = device.create_file("f", slot_count=1)
        f.append_record(b"x")
        f.set_slot(0, 0, 7)
        with pytest.raises(WormViolationError):
            f.set_slot(0, 0, 8)

    def test_blocks_iterate_in_order(self, device):
        f = device.create_file("f")
        for _ in range(5):
            f.append_record(b"x" * 16)
        assert [b.block_no for b in f.blocks()] == [0, 1, 2, 3, 4]
