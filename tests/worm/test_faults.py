"""Crash-safety suite: recovery under exhaustive fault injection.

The invariant under test, for *every* registered injection point: after
a torn write, failed journal I/O, or simulated crash anywhere in a
scripted workload, reopen-and-replay yields exactly the state produced
by some prefix of the committed operations — never a ``struct.error``,
divergent in-memory state, or a false ``TamperDetectedError``.
"""

import os
import shutil

import pytest

from repro.worm.device import WormDevice
from repro.worm.faults import (
    CRASH_POINTS,
    JOURNAL_OPS,
    FaultInjectingWormDevice,
    FaultPlan,
    InjectedFaultError,
    SimulatedCrashError,
    tear_journal,
)
from repro.worm.persistent import JournaledWormDevice, scan_journal

BLOCK_SIZE = 128
LARGE_BLOCK_SIZE = 1 << 17
LARGE_PAYLOAD = b"L" * 70000  # would overflow a v1 u16 record length


def workload_ops(large=False):
    """A scripted workload covering every opcode (one journal record each)."""
    mid = LARGE_PAYLOAD if large else b"beta"
    return [
        lambda d: d.create_file("a", slot_count=2),
        lambda d: d.open_file("a").append_record(b"alpha"),
        lambda d: d.create_file("tmp", retention_until=10.0),
        lambda d: d.open_file("a").set_slot(0, 0, 7),
        lambda d: d.open_file("a").append_record(mid),
        lambda d: d.open_file("tmp").append_record(b"gone"),
        lambda d: d.open_file("a").set_slot(0, 1, 9),
        lambda d: d.delete_file("tmp", now=20.0),
        lambda d: d.open_file("a").append_record(b"tail"),
    ]


def device_state(device):
    """Comparable snapshot of a device's full committed state."""
    state = {}
    for name in device.list_files():
        worm_file = device.open_file(name)
        state[name] = {
            "block_size": worm_file.block_size,
            "slot_count": worm_file.slot_count,
            "retention": worm_file.retention_until,
            "blocks": [
                (block.fill, block.read(), block.slots())
                for block in worm_file.blocks()
            ],
        }
    return state


def model_snapshots(large=False):
    """``snapshots[k]`` = state after the first ``k`` ops, on a plain device."""
    block_size = LARGE_BLOCK_SIZE if large else BLOCK_SIZE
    model = WormDevice(block_size=block_size)
    snapshots = [device_state(model)]
    for op in workload_ops(large):
        op(model)
        snapshots.append(device_state(model))
    return snapshots


def run_workload(device, large=False):
    """Apply ops until one raises; returns the count that completed."""
    done = 0
    for op in workload_ops(large):
        op(device)
        done += 1
    return done


def assert_consistent_prefix(path, snapshots, *, at_least=0):
    """Reopen ``path``; its state must equal a committed-prefix snapshot."""
    report = scan_journal(path)
    assert report.ok, f"false tamper alarm after fault: {report.error}"
    recovered = JournaledWormDevice(path)
    seq = recovered._sequence
    assert at_least <= seq <= len(snapshots) - 1
    assert device_state(recovered) == snapshots[seq]
    recovered.close()
    return seq


def count_calls(tmp_path, *, large=False, fsync=True, group_commit=1):
    """Dry-run the workload; the plan's counters enumerate fault points."""
    plan = FaultPlan()
    device = FaultInjectingWormDevice(
        str(tmp_path / "dry.worm"),
        plan=plan,
        block_size=LARGE_BLOCK_SIZE if large else BLOCK_SIZE,
        fsync=fsync,
        group_commit=group_commit,
    )
    run_workload(device, large)
    device.close()
    return dict(plan.counts)


class TestTearEveryByteBoundary:
    def test_replay_after_tear_at_every_boundary(self, tmp_path):
        """Truncate the journal at every byte; replay must always yield a
        consistent committed prefix and leave the device usable."""
        source = str(tmp_path / "clean.worm")
        device = JournaledWormDevice(source, block_size=BLOCK_SIZE)
        run_workload(device)
        device.close()
        snapshots = model_snapshots()
        size = os.path.getsize(source)
        torn = str(tmp_path / "torn.worm")
        seqs = []
        for boundary in range(size + 1):
            shutil.copy(source, torn)
            tear_journal(torn, boundary)
            seqs.append(assert_consistent_prefix(torn, snapshots))
        # Tears sweep monotonically through every commit point.
        assert seqs[0] == 0
        assert seqs[-1] == len(workload_ops())
        assert sorted(set(seqs)) == list(range(len(workload_ops()) + 1))

    def test_torn_journal_accepts_new_appends(self, tmp_path):
        source = str(tmp_path / "clean.worm")
        device = JournaledWormDevice(source, block_size=BLOCK_SIZE)
        run_workload(device)
        device.close()
        size = os.path.getsize(source)
        torn = str(tmp_path / "torn.worm")
        for boundary in range(10, size, max(1, size // 8)):
            shutil.copy(source, torn)
            tear_journal(torn, boundary)
            recovered = JournaledWormDevice(torn, block_size=BLOCK_SIZE)
            if recovered.exists("a"):
                recovered.open_file("a").append_record(b"+")
                total = recovered.open_file("a").total_bytes()
                recovered.close()
                reopened = JournaledWormDevice(torn)
                assert reopened.open_file("a").total_bytes() == total
                reopened.close()
            else:
                recovered.close()

    def test_large_append_torn_at_key_boundaries(self, tmp_path):
        """Tears inside a 70 KiB append frame (spanning the old u16 limit)."""
        source = str(tmp_path / "large.worm")
        device = JournaledWormDevice(source, block_size=LARGE_BLOCK_SIZE)
        run_workload(device, large=True)
        device.close()
        snapshots = model_snapshots(large=True)
        size = os.path.getsize(source)
        boundaries = sorted(
            {0, 1, 8, 9, 17, size // 3, size // 2, 65535, 65536, 70000,
             size - 1, size}
        )
        torn = str(tmp_path / "torn.worm")
        for boundary in boundaries:
            shutil.copy(source, torn)
            tear_journal(torn, boundary)
            assert_consistent_prefix(torn, snapshots)
        # An untorn journal replays the whole workload, 70 KiB append included.
        shutil.copy(source, torn)
        recovered = JournaledWormDevice(torn)
        # Block 0 holds b"alpha" at offset 0, then the 70 KiB payload.
        assert recovered.open_file("a").read(0, 5, len(LARGE_PAYLOAD)) == LARGE_PAYLOAD
        recovered.close()


def _fault_cases():
    """(journal op, 1-based call index) for every call the workload makes.

    Counts are fixed by the workload shape: the magic stamp is write and
    flush call #1, then one write/flush/fsync per record (fsync=True,
    group_commit=1), so record N rides call N+1 (fsync: call N).
    """
    records = len(workload_ops())
    cases = []
    for call in range(1, records + 2):  # +1 for the magic stamp
        cases.append(("write", call))
        cases.append(("flush", call))
    for call in range(1, records + 1):
        cases.append(("fsync", call))
    return cases


class TestFailEveryJournalCall:
    def test_registry_matches_workload(self, tmp_path):
        counts = count_calls(tmp_path)
        records = len(workload_ops())
        assert counts["write"] == records + 1  # + magic stamp
        assert counts["flush"] == records + 1
        assert counts["fsync"] == records
        assert set(counts) <= set(JOURNAL_OPS) | set(CRASH_POINTS)

    @pytest.mark.parametrize(("op", "call"), _fault_cases())
    def test_injected_failure_rolls_back_and_recovers(self, tmp_path, op, call):
        """A failed write/flush/fsync aborts the op, leaves memory and
        journal in agreement, and the device keeps working."""
        path = str(tmp_path / "j.worm")
        plan = FaultPlan().fail(op, on_call=call, keep_bytes=3 if op == "write" else None)
        snapshots = model_snapshots()
        try:
            device = FaultInjectingWormDevice(
                path, plan=plan, block_size=BLOCK_SIZE, fsync=True
            )
        except InjectedFaultError:
            # Failed while stamping the magic of the new journal.
            assert (op, call) in {("write", 1), ("flush", 1)}
            return
        with pytest.raises(InjectedFaultError):
            run_workload(device)
        # Live memory equals some committed prefix...
        live = device_state(device)
        assert live in snapshots
        completed = snapshots.index(live)
        # ...and the journal agrees with memory exactly (no divergence).
        device.close()
        seq = assert_consistent_prefix(path, snapshots, at_least=completed)
        assert seq == completed

    @pytest.mark.parametrize("keep_bytes", [0, 1, 4, 9, 20])
    def test_torn_write_is_rolled_back_in_process(self, tmp_path, keep_bytes):
        path = str(tmp_path / "j.worm")
        plan = FaultPlan().fail("write", on_call=3, keep_bytes=keep_bytes)
        device = FaultInjectingWormDevice(path, plan=plan, block_size=BLOCK_SIZE)
        f = device.create_file("a", slot_count=2)
        with pytest.raises(InjectedFaultError):
            f.append_record(b"alpha")
        # Rollback scrubbed the partial frame: the append can be retried.
        f.append_record(b"alpha")
        device.close()
        recovered = JournaledWormDevice(path)
        assert recovered.open_file("a").read(0) == b"alpha"
        recovered.close()


class TestCrashEverywhere:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_at_every_wal_stage(self, tmp_path, point):
        """Power loss between logging and applying (or just after
        applying) any op recovers to the logged prefix on replay."""
        path = str(tmp_path / "j.worm")
        device = FaultInjectingWormDevice(
            path, plan=FaultPlan().crash(point), block_size=BLOCK_SIZE
        )
        snapshots = model_snapshots()
        with pytest.raises(SimulatedCrashError):
            run_workload(device)
        applied = snapshots.index(device_state(device))
        # The crashed op was journaled before either crash point fires,
        # so replay recovers it even when live memory never applied it.
        seq = assert_consistent_prefix(path, snapshots, at_least=1)
        if point.endswith("between-log-and-apply"):
            assert seq == applied + 1
        else:
            assert seq == applied

    @pytest.mark.parametrize("call", range(2, len(workload_ops()) + 2))
    @pytest.mark.parametrize("keep_bytes", [0, 1, 5, 9, 16])
    def test_crash_mid_write_leaves_torn_recoverable_tail(
        self, tmp_path, call, keep_bytes
    ):
        """Power loss part-way through any record write: the torn frame
        stays on disk and replay discards exactly it."""
        path = str(tmp_path / "j.worm")
        plan = FaultPlan().crash("write", on_call=call, keep_bytes=keep_bytes)
        device = FaultInjectingWormDevice(path, plan=plan, block_size=BLOCK_SIZE)
        snapshots = model_snapshots()
        with pytest.raises(SimulatedCrashError):
            run_workload(device)
        if keep_bytes:
            assert os.path.getsize(path) > 0
        # Record N rides write call N+1 (call 1 stamps the magic), so all
        # records before the torn one are committed.
        seq = assert_consistent_prefix(path, snapshots)
        assert seq == call - 2

    def test_device_is_dead_after_crash(self, tmp_path):
        path = str(tmp_path / "j.worm")
        plan = FaultPlan().crash("append:between-log-and-apply")
        device = FaultInjectingWormDevice(path, plan=plan, block_size=BLOCK_SIZE)
        device.create_file("a")
        with pytest.raises(SimulatedCrashError):
            device.open_file("a").append_record(b"x")
        with pytest.raises(SimulatedCrashError):
            device.create_file("b")

    def test_crash_during_large_append_write(self, tmp_path):
        """Tear a 70 KiB append frame at the old u16 horizon: recovery
        must not mis-frame it (the v1 bug class)."""
        path = str(tmp_path / "j.worm")
        # The 70 KiB append is record 5, i.e. journal write call 6.
        plan = FaultPlan().crash("write", on_call=6, keep_bytes=65537)
        device = FaultInjectingWormDevice(
            path, plan=plan, block_size=LARGE_BLOCK_SIZE
        )
        snapshots = model_snapshots(large=True)
        with pytest.raises(SimulatedCrashError):
            run_workload(device, large=True)
        seq = assert_consistent_prefix(path, snapshots)
        assert seq == 4  # everything before the torn large append


class TestShardJournals:
    """The same crash-safety guarantees across a sharded archive."""

    def _build(self, tmp_path, shard_plans):
        from repro.search.engine import EngineConfig
        from repro.sharding.engine import ShardedSearchEngine
        from repro.worm.storage import CachedWormStore

        config = EngineConfig(num_lists=8, branching=4, block_size=512)
        devices = []

        def store_factory(shard_id):
            device = FaultInjectingWormDevice(
                str(tmp_path / f"shard{shard_id:02d}.worm"),
                plan=shard_plans.get(shard_id, FaultPlan()),
                block_size=512,
            )
            devices.append(device)
            return CachedWormStore(None, device=device)

        coordinator_device = JournaledWormDevice(
            str(tmp_path / "coordinator.worm"), block_size=512
        )
        engine = ShardedSearchEngine(
            config,
            num_shards=2,
            store_factory=store_factory,
            coordinator_store=CachedWormStore(None, device=coordinator_device),
        )
        return config, engine, devices + [coordinator_device]

    def _reopen(self, tmp_path, config):
        from repro.sharding.engine import ShardedSearchEngine
        from repro.worm.storage import CachedWormStore

        def store_factory(shard_id):
            return CachedWormStore(
                None,
                device=JournaledWormDevice(
                    str(tmp_path / f"shard{shard_id:02d}.worm")
                ),
            )

        return ShardedSearchEngine(
            config,
            num_shards=2,
            store_factory=store_factory,
            coordinator_store=CachedWormStore(
                None,
                device=JournaledWormDevice(str(tmp_path / "coordinator.worm")),
            ),
        )

    @pytest.mark.parametrize(
        ("shard", "point", "on_call"),
        [
            (1, "append:between-log-and-apply", 40),
            (1, "create:after-apply", 20),
            (0, "set_slot:after-apply", 1),
        ],
    )
    def test_shard_crash_recovers_committed_documents(
        self, tmp_path, shard, point, on_call
    ):
        plan = FaultPlan().crash(point, on_call=on_call)
        config, engine, devices = self._build(tmp_path, {shard: plan})
        committed = 0
        try:
            for i in range(60):
                engine.index_document(f"memo d{i} keyword{i}")
                committed += 1
        except SimulatedCrashError:
            pass
        assert committed < 60, "the shard fault never fired"
        engine.close()
        for device in devices:
            if not getattr(device, "plan", None) or not device.plan.crashed:
                device.close()
        # Every journal replays clean — no false tamper alarms.
        for shard_id in range(2):
            assert scan_journal(
                str(tmp_path / f"shard{shard_id:02d}.worm")
            ).ok
        assert scan_journal(str(tmp_path / "coordinator.worm")).ok
        # Every fully committed document is still found after recovery.
        recovered = self._reopen(tmp_path, config)
        with recovered:
            for i in range(committed):
                hits = recovered.search(f"keyword{i}", verify=False)
                assert any(h.doc_id == i for h in hits), f"doc {i} lost"

    def test_sync_barrier_spans_all_shard_journals(self, tmp_path):
        plans = {0: FaultPlan(), 1: FaultPlan()}
        config, engine, devices = self._build(tmp_path, plans)
        for device in devices[:2]:
            device.fsync = True
            device.group_commit = 1 << 30  # never auto-fsync
        for i in range(10):
            engine.index_document(f"doc {i}")
        before = [plans[s].count("fsync") for s in range(2)]
        engine.sync()
        after = [plans[s].count("fsync") for s in range(2)]
        assert after == [b + 1 for b in before]
        engine.close()
        for device in devices:
            device.close()


class TestGroupCommit:
    def _appends(self, tmp_path, *, group_commit, records):
        plan = FaultPlan()
        device = FaultInjectingWormDevice(
            str(tmp_path / "j.worm"),
            plan=plan,
            block_size=BLOCK_SIZE,
            fsync=True,
            group_commit=group_commit,
        )
        f = device.create_file("a")
        for i in range(records - 1):  # the create is record #1
            f.append_record(b"r")
        return plan, device

    def test_fsync_every_record_by_default(self, tmp_path):
        plan, device = self._appends(tmp_path, group_commit=1, records=12)
        assert plan.count("fsync") == 12
        device.close()
        assert plan.count("fsync") == 12  # nothing pending at close

    def test_group_commit_amortizes_fsync(self, tmp_path):
        plan, device = self._appends(tmp_path, group_commit=4, records=12)
        assert plan.count("fsync") == 3  # after records 4, 8, 12
        device.close()
        assert plan.count("fsync") == 3

    def test_close_syncs_the_open_tail_group(self, tmp_path):
        plan, device = self._appends(tmp_path, group_commit=5, records=12)
        assert plan.count("fsync") == 2  # records 5 and 10; 2 pending
        device.close()
        assert plan.count("fsync") == 3

    def test_explicit_sync_barrier(self, tmp_path):
        plan, device = self._appends(tmp_path, group_commit=100, records=6)
        assert plan.count("fsync") == 0
        device.sync()
        assert plan.count("fsync") == 1
        device.open_file("a").append_record(b"x")
        assert plan.count("fsync") == 1  # group restarted after barrier
        device.close()
        assert plan.count("fsync") == 2

    def test_sync_works_without_fsync_mode(self, tmp_path):
        plan = FaultPlan()
        device = FaultInjectingWormDevice(
            str(tmp_path / "j.worm"), plan=plan, block_size=BLOCK_SIZE
        )
        device.create_file("a")
        device.sync()  # explicit barrier fsyncs even with fsync=False
        assert plan.count("fsync") == 1
        device.close()

    def test_crash_loses_at_most_the_unsynced_group(self, tmp_path):
        plan = FaultPlan().crash("write", on_call=9)
        device = FaultInjectingWormDevice(
            str(tmp_path / "j.worm"),
            plan=plan,
            block_size=BLOCK_SIZE,
            fsync=True,
            group_commit=4,
        )
        f = device.create_file("a")
        with pytest.raises(SimulatedCrashError):
            for i in range(20):
                f.append_record(b"r%d" % i)
        recovered = JournaledWormDevice(str(tmp_path / "j.worm"))
        # Records 1..7 (create + 6 appends) were written; the 8th append
        # tore.  Everything on disk before the tear replays.
        assert recovered.open_file("a").total_bytes() == 12
        recovered.close()

    def test_group_commit_validation(self, tmp_path):
        with pytest.raises(ValueError):
            JournaledWormDevice(str(tmp_path / "j.worm"), group_commit=0)
