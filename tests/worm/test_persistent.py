"""Unit tests for the journaled (file-backed) WORM device."""

import os
import struct
import zlib

import pytest

from repro.errors import TamperDetectedError, WormError, WormViolationError
from repro.worm.persistent import (
    FORMAT_V1,
    FORMAT_V2,
    JOURNAL_MAGIC,
    JournaledWormDevice,
    scan_journal,
)

_V2_FRAME = struct.Struct("<BII")


@pytest.fixture()
def journal_path(tmp_path):
    return str(tmp_path / "device.journal")


def reopen(device, path):
    device.close()
    return JournaledWormDevice(path)


def v2_record_extents(data):
    """Byte extents ``(start, end)`` of every v2 record in ``data``."""
    extents = []
    offset = len(JOURNAL_MAGIC)
    while offset < len(data):
        _version, _crc, length = _V2_FRAME.unpack_from(data, offset)
        end = offset + _V2_FRAME.size + length
        extents.append((offset, end))
        offset = end
    return extents


def write_v1_journal(path, records):
    """Write a legacy v1 journal exactly as pre-v2 releases framed it.

    ``records`` are ``(opcode, body)`` pairs; sequence numbers are
    assigned in order.  v1 has no file magic and u16 record lengths.
    """
    with open(path, "wb") as handle:
        for seq, (opcode, body) in enumerate(records):
            tail = struct.pack("<Q", seq) + bytes([opcode]) + body
            handle.write(
                struct.pack("<I", zlib.crc32(tail))
                + struct.pack("<H", len(tail))
                + tail
            )


def v1_create_body(name, block_size, slot_count=0, retention=-1.0):
    raw = name.encode()
    return (
        struct.pack("<H", len(raw)) + raw
        + struct.pack("<I", block_size)
        + struct.pack("<I", slot_count)
        + struct.pack("<d", retention)
    )


def v1_append_body(name, payload, force_new=False):
    raw = name.encode()
    return (
        struct.pack("<H", len(raw)) + raw
        + bytes([1 if force_new else 0])
        + struct.pack("<I", len(payload))
        + payload
    )


class TestDurability:
    def test_files_survive_reopen(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        f = device.create_file("records", slot_count=2)
        f.append_record(b"first")
        f.append_record(b"second")
        f.set_slot(0, 1, 42)
        device = reopen(device, journal_path)
        g = device.open_file("records")
        assert g.read(0) == b"firstsecond"
        assert g.get_slot(0, 1) == 42
        assert g.block_size == 64
        assert g.slot_count == 2

    def test_block_layout_preserved(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=16)
        f = device.create_file("f")
        for _ in range(5):
            f.append_record(b"12345678")  # 2 per block
        f.append_record(b"x", force_new_block=True)
        layout = [(b.block_no, b.fill) for b in f.blocks()]
        device = reopen(device, journal_path)
        g = device.open_file("f")
        assert [(b.block_no, b.fill) for b in g.blocks()] == layout

    def test_appends_continue_after_reopen(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        device.create_file("f").append_record(b"one")
        device = reopen(device, journal_path)
        device.open_file("f").append_record(b"two")
        device = reopen(device, journal_path)
        assert device.open_file("f").read(0) == b"onetwo"

    def test_worm_semantics_survive_reopen(self, journal_path):
        device = JournaledWormDevice(journal_path)
        f = device.create_file("f", slot_count=1)
        f.append_record(b"data")
        f.set_slot(0, 0, 7)
        device = reopen(device, journal_path)
        g = device.open_file("f")
        with pytest.raises(WormViolationError):
            g.set_slot(0, 0, 8)

    def test_retention_and_delete_journaled(self, journal_path):
        device = JournaledWormDevice(journal_path)
        device.create_file("temp", retention_until=100.0)
        device.create_file("keep")
        device.delete_file("temp", now=200.0)
        device = reopen(device, journal_path)
        assert not device.exists("temp")
        assert device.exists("keep")

    def test_empty_journal_is_fresh_device(self, journal_path):
        device = JournaledWormDevice(journal_path)
        assert len(device) == 0

    def test_works_under_cached_store(self, journal_path):
        from repro.worm.storage import CachedWormStore

        device = JournaledWormDevice(journal_path, block_size=256)
        store = CachedWormStore(8, device=device)
        store.create_file("pl")
        for i in range(100):
            store.append_record("pl", b"x" * 8)
        device.close()
        store2 = CachedWormStore(8, device=JournaledWormDevice(journal_path))
        assert store2.open_file("pl").total_bytes() == 800

    def test_rejected_ops_never_reach_the_journal(self, journal_path):
        """An op the device refuses must not be logged (WAL validation)."""
        device = JournaledWormDevice(journal_path, block_size=16)
        f = device.create_file("f", slot_count=1)
        f.append_record(b"x")
        f.set_slot(0, 0, 1)
        before = os.path.getsize(journal_path)
        with pytest.raises(WormViolationError):
            f.append_record(b"y" * 17)  # exceeds block size
        with pytest.raises(WormViolationError):
            f.set_slot(0, 0, 2)  # write-once slot taken
        with pytest.raises(WormViolationError):
            device.delete_file("f")  # infinite retention
        assert os.path.getsize(journal_path) == before
        device = reopen(device, journal_path)
        assert device.open_file("f").read(0) == b"x"


class TestFormatV2:
    def test_new_journals_are_v2_with_magic(self, journal_path):
        device = JournaledWormDevice(journal_path)
        device.create_file("f")
        device.close()
        assert device.format_version == FORMAT_V2
        with open(journal_path, "rb") as handle:
            assert handle.read(len(JOURNAL_MAGIC)) == JOURNAL_MAGIC

    def test_large_append_round_trips(self, journal_path):
        """Regression: a >64 KiB payload overflowed the v1 u16 record length."""
        device = JournaledWormDevice(journal_path, block_size=1 << 20)
        payload = b"x" * 70000
        device.create_file("big").append_record(payload)
        device = reopen(device, journal_path)
        assert device.open_file("big").read(0) == payload

    def test_name_too_long_raises_worm_error(self, journal_path):
        device = JournaledWormDevice(journal_path)
        with pytest.raises(WormError, match="name too long"):
            device.create_file("n" * 70000)


class TestV1Compatibility:
    def _write_legacy(self, journal_path):
        write_v1_journal(
            journal_path,
            [
                (1, v1_create_body("f", block_size=64, slot_count=1)),
                (2, v1_append_body("f", b"legacy")),
                (3, (
                    struct.pack("<H", 1) + b"f"
                    + struct.pack("<I", 0)
                    + struct.pack("<I", 0)
                    + struct.pack("<Q", 99)
                )),
            ],
        )

    def test_v1_journal_replays(self, journal_path):
        self._write_legacy(journal_path)
        device = JournaledWormDevice(journal_path)
        assert device.format_version == FORMAT_V1
        f = device.open_file("f")
        assert f.read(0) == b"legacy"
        assert f.get_slot(0, 0) == 99

    def test_v1_journal_keeps_accepting_v1_appends(self, journal_path):
        self._write_legacy(journal_path)
        device = JournaledWormDevice(journal_path)
        device.open_file("f").append_record(b"-more")
        device = reopen(device, journal_path)
        assert device.format_version == FORMAT_V1
        assert device.open_file("f").read(0) == b"legacy-more"

    def test_v1_oversize_record_raises_worm_error_not_struct_error(
        self, journal_path
    ):
        self._write_legacy(journal_path)
        device = JournaledWormDevice(journal_path)
        device.create_file("big", block_size=1 << 20)
        with pytest.raises(WormError, match="overflows the length field"):
            device.open_file("big").append_record(b"x" * 70000)
        # The refused record was never logged: the device stays sound.
        device = reopen(device, journal_path)
        assert device.open_file("big").total_bytes() == 0

    def test_v1_scan(self, journal_path):
        self._write_legacy(journal_path)
        report = scan_journal(journal_path)
        assert report.ok
        assert report.format_version == FORMAT_V1
        assert report.records == 3


class TestCloseSemantics:
    def test_close_is_idempotent(self, journal_path):
        device = JournaledWormDevice(journal_path)
        device.create_file("f")
        device.close()
        device.close()  # second close is a no-op
        assert device.closed

    def test_write_after_close_raises(self, journal_path):
        device = JournaledWormDevice(journal_path)
        f = device.create_file("f")
        device.close()
        with pytest.raises(WormError, match="closed"):
            f.append_record(b"late")

    def test_context_manager_round_trip(self, journal_path):
        with JournaledWormDevice(journal_path, block_size=64) as device:
            device.create_file("f").append_record(b"ctx")
        assert device.closed
        with JournaledWormDevice(journal_path) as device:
            assert device.open_file("f").read(0) == b"ctx"

    def test_close_reopen_round_trip_with_group_commit(self, journal_path):
        device = JournaledWormDevice(
            journal_path, block_size=64, fsync=True, group_commit=8
        )
        f = device.create_file("f")
        for i in range(5):
            f.append_record(b"r%d" % i)
        device.close()  # must sync the open group tail
        device = JournaledWormDevice(journal_path)
        assert device.open_file("f").total_bytes() == 10


class TestEngineOnDisk:
    def test_full_engine_round_trip(self, journal_path):
        from repro.search.engine import EngineConfig, TrustworthySearchEngine
        from repro.worm.storage import CachedWormStore

        config = EngineConfig(num_lists=16, branching=4, block_size=512)
        device = JournaledWormDevice(journal_path, block_size=512)
        engine = TrustworthySearchEngine(
            config, store=CachedWormStore(None, device=device)
        )
        engine.index_document("imclone memo for stewart")
        engine.index_document("budget meeting notes")
        device.close()
        # A brand-new process: fresh device replayed from the journal.
        engine2 = TrustworthySearchEngine(
            config,
            store=CachedWormStore(None, device=JournaledWormDevice(journal_path)),
        )
        assert [r.doc_id for r in engine2.search("imclone")] == [0]
        assert engine2.documents.get(1).text == "budget meeting notes"


class TestTamperingAndCrashes:
    def _fill(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        f = device.create_file("f")
        for i in range(10):
            f.append_record(f"rec{i}".encode())
        device.close()

    def test_torn_tail_is_discarded_not_fatal(self, journal_path):
        self._fill(journal_path)
        with open(journal_path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # a torn partial record
        device = JournaledWormDevice(journal_path)
        assert device.open_file("f").total_bytes() == 40  # 10 * 'recN'

    def test_torn_tail_is_truncated_so_later_appends_survive(self, journal_path):
        """Regression: appends after a discarded torn tail used to be
        shadowed by the garbage bytes and silently lost on the next
        replay."""
        self._fill(journal_path)
        clean_size = os.path.getsize(journal_path)
        with open(journal_path, "ab") as handle:
            handle.write(b"\x99" * 7)
        device = JournaledWormDevice(journal_path)
        assert os.path.getsize(journal_path) == clean_size
        device.open_file("f").append_record(b"after-tear")
        device = reopen(device, journal_path)
        assert device.open_file("f").total_bytes() == 50

    def test_bit_flip_detected(self, journal_path):
        self._fill(journal_path)
        data = bytearray(open(journal_path, "rb").read())
        start, _end = v2_record_extents(data)[0]
        data[start + 11] ^= 0xFF  # inside the first record's tail
        open(journal_path, "wb").write(bytes(data))
        with pytest.raises(TamperDetectedError) as excinfo:
            JournaledWormDevice(journal_path)
        assert excinfo.value.invariant in ("journal-crc", "journal-sequence")

    def test_record_excision_detected(self, journal_path):
        """Deleting a middle record breaks the sequence numbering."""
        self._fill(journal_path)
        data = open(journal_path, "rb").read()
        extents = v2_record_extents(data)
        (_s1, e1), (_s2, e2) = extents[0], extents[1]
        open(journal_path, "wb").write(data[:e1] + data[e2:])
        with pytest.raises(TamperDetectedError) as excinfo:
            JournaledWormDevice(journal_path)
        assert excinfo.value.invariant == "journal-sequence"

    def test_unsupported_record_version_detected(self, journal_path):
        self._fill(journal_path)
        data = bytearray(open(journal_path, "rb").read())
        start, _end = v2_record_extents(data)[0]
        data[start] = 9  # bogus per-record format version
        open(journal_path, "wb").write(bytes(data))
        with pytest.raises(TamperDetectedError) as excinfo:
            JournaledWormDevice(journal_path)
        assert excinfo.value.invariant == "journal-record-version"

    def test_torn_magic_header_restarts_fresh(self, journal_path):
        with open(journal_path, "wb") as handle:
            handle.write(JOURNAL_MAGIC[:3])  # crash while stamping magic
        device = JournaledWormDevice(journal_path)
        assert len(device) == 0
        device.create_file("f").append_record(b"ok")
        device = reopen(device, journal_path)
        assert device.open_file("f").read(0) == b"ok"

    def test_fsync_mode(self, journal_path):
        device = JournaledWormDevice(journal_path, fsync=True)
        device.create_file("f").append_record(b"durable")
        device.close()
        assert JournaledWormDevice(journal_path).open_file("f").read(0) == b"durable"


class TestScanJournal:
    def test_scan_clean_journal(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        device.create_file("f", slot_count=1)
        device.open_file("f").append_record(b"data")
        device.open_file("f").set_slot(0, 0, 1)
        device.close()
        report = scan_journal(journal_path)
        assert report.ok
        assert report.records == 3
        assert report.op_counts == {"create": 1, "append": 1, "set_slot": 1}
        assert report.torn_bytes == 0
        assert report.committed_bytes == os.path.getsize(journal_path)
        assert "OK" in report.summary()

    def test_scan_reports_torn_tail(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        device.create_file("f")
        device.close()
        with open(journal_path, "ab") as handle:
            handle.write(b"\x02\x01")
        report = scan_journal(journal_path)
        assert report.ok
        assert report.torn_bytes == 2
        assert "torn tail" in report.summary()

    def test_scan_reports_tampering_without_raising(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        device.create_file("f")
        device.open_file("f").append_record(b"data")
        device.close()
        data = bytearray(open(journal_path, "rb").read())
        start, _end = v2_record_extents(data)[0]
        data[start + 12] ^= 0xFF
        open(journal_path, "wb").write(bytes(data))
        report = scan_journal(journal_path)
        assert not report.ok
        assert report.invariant == "journal-crc"
        assert "TAMPERED" in report.summary()

    def test_scan_empty_journal(self, journal_path):
        open(journal_path, "wb").close()
        report = scan_journal(journal_path)
        assert report.ok
        assert report.records == 0
