"""Unit tests for the journaled (file-backed) WORM device."""

import struct

import pytest

from repro.errors import TamperDetectedError, WormViolationError
from repro.worm.persistent import JournaledWormDevice


@pytest.fixture()
def journal_path(tmp_path):
    return str(tmp_path / "device.journal")


def reopen(device, path):
    device.close()
    return JournaledWormDevice(path)


class TestDurability:
    def test_files_survive_reopen(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        f = device.create_file("records", slot_count=2)
        f.append_record(b"first")
        f.append_record(b"second")
        f.set_slot(0, 1, 42)
        device = reopen(device, journal_path)
        g = device.open_file("records")
        assert g.read(0) == b"firstsecond"
        assert g.get_slot(0, 1) == 42
        assert g.block_size == 64
        assert g.slot_count == 2

    def test_block_layout_preserved(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=16)
        f = device.create_file("f")
        for _ in range(5):
            f.append_record(b"12345678")  # 2 per block
        f.append_record(b"x", force_new_block=True)
        layout = [(b.block_no, b.fill) for b in f.blocks()]
        device = reopen(device, journal_path)
        g = device.open_file("f")
        assert [(b.block_no, b.fill) for b in g.blocks()] == layout

    def test_appends_continue_after_reopen(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        device.create_file("f").append_record(b"one")
        device = reopen(device, journal_path)
        device.open_file("f").append_record(b"two")
        device = reopen(device, journal_path)
        assert device.open_file("f").read(0) == b"onetwo"

    def test_worm_semantics_survive_reopen(self, journal_path):
        device = JournaledWormDevice(journal_path)
        f = device.create_file("f", slot_count=1)
        f.append_record(b"data")
        f.set_slot(0, 0, 7)
        device = reopen(device, journal_path)
        g = device.open_file("f")
        with pytest.raises(WormViolationError):
            g.set_slot(0, 0, 8)

    def test_retention_and_delete_journaled(self, journal_path):
        device = JournaledWormDevice(journal_path)
        device.create_file("temp", retention_until=100.0)
        device.create_file("keep")
        device.delete_file("temp", now=200.0)
        device = reopen(device, journal_path)
        assert not device.exists("temp")
        assert device.exists("keep")

    def test_empty_journal_is_fresh_device(self, journal_path):
        device = JournaledWormDevice(journal_path)
        assert len(device) == 0

    def test_works_under_cached_store(self, journal_path):
        from repro.worm.storage import CachedWormStore

        device = JournaledWormDevice(journal_path, block_size=256)
        store = CachedWormStore(8, device=device)
        store.create_file("pl")
        for i in range(100):
            store.append_record("pl", b"x" * 8)
        device.close()
        store2 = CachedWormStore(8, device=JournaledWormDevice(journal_path))
        assert store2.open_file("pl").total_bytes() == 800


class TestEngineOnDisk:
    def test_full_engine_round_trip(self, journal_path):
        from repro.search.engine import EngineConfig, TrustworthySearchEngine
        from repro.worm.storage import CachedWormStore

        config = EngineConfig(num_lists=16, branching=4, block_size=512)
        device = JournaledWormDevice(journal_path, block_size=512)
        engine = TrustworthySearchEngine(
            config, store=CachedWormStore(None, device=device)
        )
        engine.index_document("imclone memo for stewart")
        engine.index_document("budget meeting notes")
        device.close()
        # A brand-new process: fresh device replayed from the journal.
        engine2 = TrustworthySearchEngine(
            config,
            store=CachedWormStore(None, device=JournaledWormDevice(journal_path)),
        )
        assert [r.doc_id for r in engine2.search("imclone")] == [0]
        assert engine2.documents.get(1).text == "budget meeting notes"


class TestTamperingAndCrashes:
    def _fill(self, journal_path):
        device = JournaledWormDevice(journal_path, block_size=64)
        f = device.create_file("f")
        for i in range(10):
            f.append_record(f"rec{i}".encode())
        device.close()

    def test_torn_tail_is_discarded_not_fatal(self, journal_path):
        self._fill(journal_path)
        with open(journal_path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # a torn partial record
        device = JournaledWormDevice(journal_path)
        assert device.open_file("f").total_bytes() == 40  # 10 * 'recN'

    def test_bit_flip_detected(self, journal_path):
        self._fill(journal_path)
        data = bytearray(open(journal_path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(journal_path, "wb").write(bytes(data))
        with pytest.raises(TamperDetectedError) as excinfo:
            JournaledWormDevice(journal_path)
        assert excinfo.value.invariant in ("journal-crc", "journal-sequence")

    def test_record_excision_detected(self, journal_path):
        """Deleting a middle record breaks the sequence numbering."""
        self._fill(journal_path)
        data = open(journal_path, "rb").read()
        # Parse out the first record's extent and remove the second.
        (length0,) = struct.unpack_from("<H", data, 4)
        first_end = 6 + length0
        (length1,) = struct.unpack_from("<H", data, first_end + 4)
        second_end = first_end + 6 + length1
        open(journal_path, "wb").write(data[:first_end] + data[second_end:])
        with pytest.raises(TamperDetectedError) as excinfo:
            JournaledWormDevice(journal_path)
        assert excinfo.value.invariant == "journal-sequence"

    def test_fsync_mode(self, journal_path):
        device = JournaledWormDevice(journal_path, fsync=True)
        device.create_file("f").append_record(b"durable")
        device.close()
        assert JournaledWormDevice(journal_path).open_file("f").read(0) == b"durable"
