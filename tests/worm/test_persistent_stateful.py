"""Stateful property test: the journaled device vs an in-memory mirror.

Random create/append/set-slot/reopen histories; after every step, the
device must agree with a plain dict-based model, and a reopen (full
journal replay) must be state-preserving.
"""

import os
import tempfile

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule
from hypothesis import strategies as st

from repro.worm.persistent import JournaledWormDevice


class PersistentDeviceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self._tmp = tempfile.TemporaryDirectory()
        self.path = os.path.join(self._tmp.name, "journal.worm")
        self.device = JournaledWormDevice(self.path, block_size=32)
        # Model: name -> {"data": bytes, "slots": {(block, slot): value}}
        self.model = {}
        self.next_file = 0

    def teardown(self):
        self.device.close()
        self._tmp.cleanup()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    @rule(slot_count=st.integers(min_value=0, max_value=4))
    def create(self, slot_count):
        name = f"f{self.next_file}"
        self.next_file += 1
        self.device.create_file(name, slot_count=slot_count)
        self.model[name] = {"data": b"", "slots": {}, "slot_count": slot_count}

    @precondition(lambda self: self.model)
    @rule(data=st.data(), payload=st.binary(min_size=1, max_size=20))
    def append(self, data, payload):
        name = data.draw(st.sampled_from(sorted(self.model)))
        self.device.open_file(name).append_record(payload)
        self.model[name]["data"] += payload

    @precondition(
        lambda self: any(
            m["slot_count"] > 0 and self.device.open_file(n).num_blocks > 0
            for n, m in self.model.items()
        )
    )
    @rule(data=st.data(), value=st.integers(min_value=0, max_value=1000))
    def set_slot(self, data, value):
        eligible = [
            n
            for n, m in self.model.items()
            if m["slot_count"] > 0 and self.device.open_file(n).num_blocks > 0
        ]
        name = data.draw(st.sampled_from(sorted(eligible)))
        worm_file = self.device.open_file(name)
        block_no = data.draw(
            st.integers(min_value=0, max_value=worm_file.num_blocks - 1)
        )
        slot_no = data.draw(
            st.integers(min_value=0, max_value=self.model[name]["slot_count"] - 1)
        )
        key = (block_no, slot_no)
        if key in self.model[name]["slots"]:
            return  # write-once; the model knows it's taken
        worm_file.set_slot(block_no, slot_no, value)
        self.model[name]["slots"][key] = value

    @rule()
    def reopen(self):
        """Simulated restart: close, replay the journal from disk."""
        self.device.close()
        self.device = JournaledWormDevice(self.path, block_size=32)
        self.check_agreement()

    # ------------------------------------------------------------------
    # agreement check
    # ------------------------------------------------------------------
    def check_agreement(self):
        assert sorted(self.device.list_files()) == sorted(self.model)
        for name, expected in self.model.items():
            worm_file = self.device.open_file(name)
            stored = b"".join(
                worm_file.read(b) for b in range(worm_file.num_blocks)
            )
            assert stored == expected["data"], name
            for (block_no, slot_no), value in expected["slots"].items():
                assert worm_file.get_slot(block_no, slot_no) == value


TestPersistentDeviceMachine = PersistentDeviceMachine.TestCase
TestPersistentDeviceMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
