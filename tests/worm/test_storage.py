"""Unit tests for the cached WORM store (device + cache + accounting)."""

import pytest

from repro.errors import UnknownFileError, WormViolationError
from repro.worm.iostats import IoStats
from repro.worm.storage import CachedWormStore


class TestLifecycle:
    def test_create_open_ensure(self, store):
        created = store.create_file("f")
        assert store.open_file("f") is created
        assert store.ensure_file("f") is created
        other = store.ensure_file("g")
        assert store.open_file("g") is other

    def test_block_size_exposed(self):
        assert CachedWormStore(None, block_size=512).block_size == 512


class TestCountedAppends:
    def test_resident_tail_appends_are_free(self, store):
        store.create_file("f")
        store.append_record("f", b"x" * 8)
        store.append_record("f", b"x" * 8)
        assert store.io.total == 0  # 256-byte block, nowhere near full

    def test_block_fill_costs_one_write(self, store):
        store.create_file("f")
        for _ in range(32):  # 32 * 8 = 256 bytes: exactly one block
            store.append_record("f", b"x" * 8)
        assert store.io.block_writes == 1
        assert store.io.block_reads == 0

    def test_partial_roll_flushes_old_tail(self, store):
        store.create_file("f")
        store.append_record("f", b"x" * 200)
        store.append_record("f", b"x" * 200)  # does not fit: rolls
        assert store.io.block_writes == 1

    def test_force_new_block_flushes_old_tail(self, store):
        store.create_file("f")
        store.append_record("f", b"x")
        store.append_record("f", b"y", force_new_block=True)
        assert store.io.block_writes == 1
        assert store.open_file("f").num_blocks == 2

    def test_eviction_under_small_cache(self, small_cache_store):
        s = small_cache_store
        for i in range(6):  # 6 lists but only 4 cache slots
            s.create_file(f"f{i}")
            s.append_record(f"f{i}", b"x")
        for i in range(6):
            s.append_record(f"f{i}", b"y")
        # Re-touching the first lists misses: evict (write) + read.
        assert s.io.block_writes >= 2
        assert s.io.block_reads >= 2


class TestCountedReadsAndSlots:
    def test_read_block_counts_on_miss(self):
        s = CachedWormStore(1, block_size=64)
        s.create_file("f")
        s.append_record("f", b"abc")
        s.create_file("g")
        s.append_record("g", b"xyz")  # evicts f's tail from the 1-slot cache
        before = s.io.block_reads
        assert s.read_block("f", 0) == b"abc"
        assert s.io.block_reads == before + 1

    def test_read_block_hit_is_free(self, store):
        store.create_file("f")
        store.append_record("f", b"abc")
        store.read_block("f", 0)
        before = store.io.total
        store.read_block("f", 0)
        assert store.io.total == before

    def test_slot_roundtrip_counted(self, store):
        store.create_file("f", slot_count=4)
        store.append_record("f", b"x")
        store.set_slot("f", 0, 2, 77)
        assert store.get_slot("f", 0, 2) == 77
        with pytest.raises(WormViolationError):
            store.set_slot("f", 0, 2, 78)

    def test_peek_paths_are_uncounted(self, store):
        store.create_file("f", slot_count=1)
        store.append_record("f", b"abc")
        store.set_slot("f", 0, 0, 5)
        store.cache.flush_all()
        before = store.io.snapshot()
        assert store.peek_block("f", 0) == b"abc"
        assert store.peek_slot("f", 0, 0) == 5
        diff = store.io.since(before)
        assert diff.total == 0

    def test_unknown_file_propagates(self, store):
        with pytest.raises(UnknownFileError):
            store.read_block("nope", 0)


class TestIoStats:
    def test_snapshot_and_since(self):
        io = IoStats()
        io.count_read(3)
        snap = io.snapshot()
        io.count_write(2)
        diff = io.since(snap)
        assert (diff.block_reads, diff.block_writes) == (0, 2)
        assert diff.total == 2
        assert snap.total == 3

    def test_reset(self):
        io = IoStats()
        io.count_read()
        io.reset()
        assert io.total == 0
